"""Turbo engine tier: fused hot-loop superblocks + steady-state bulk
stepping on top of the block engine.

The ``fast`` engine (repro.machine.blockengine) still pays, per loop
iteration, one closure call per op plus a dispatch-loop round trip per
basic block.  For the loop-dominated workloads the paper targets that
dispatch overhead *is* the simulator's hot path.  This tier removes it
in two steps:

**Superblock fusion.**  At compile time every *linear single-latch*
natural loop — header -> ... -> latch where each body node has exactly
one in-loop successor (the other successor, if any, is a side exit) —
is compiled to one generated-Python function that runs whole
iterations straight-line: virtual registers live in Python locals, PHI
edge-copies (internal, back-edge, and exit-edge) are hoisted into fixed
register-slot assignments, and per-iteration retired/load/store/taken
counts are folded into compile-time constants applied once per back
edge.  Fusion works innermost-first over whole loop *nests*: a loop
whose linear path runs through an already-fused inner loop with a
single exit target absorbs that loop as a nested ``while`` in the same
generated function, so a 60k-trip outer loop around an 8-trip inner
loop costs one Python call, not 60k.  Loops containing CALL or dynamic
(register-amount) WORK are left to the per-block path (their
per-iteration cost is unbounded and CALL is an observation point).

**Steady-state bulk stepping.**  A fused iteration still has to honour
every *observation point* the reference interpreter honours: the
per-block-boundary PEBS/LBR sample check (``cycle >= next_sample``),
the instruction-budget check, trace arming, and side exits.  Instead of
checking per block, the generated stepper computes the distance to the
next observation point and guards once per back edge::

    bound_cycles  = sum over every unit in the nest of
                    folded_const_cycles + n_loads * mem_lat + n_stores
    bound_retired = sum over every unit of folded retired count

``mem_lat`` (= LLC latency + DRAM latency) is a provable upper bound on
any demand-load latency (a coalesced MSHR wait is at most the residual
of a just-issued fill) and stores always retire in 1 cycle, so
``bound_cycles`` bounds the cycles between any two consecutive guard
evaluations (each guard-to-guard path runs at most one iteration of
each loop in the nest plus the straight-line segments between them).
While ``cycle + bound_cycles < next_sample`` and
``retired + bound_retired <= max_instructions`` hold at a guard, no
block boundary before the next guard can cross the sample cycle or the
instruction budget — the checks the reference engine would have run
are all provably no-ops, and skipping them is bit-identical.  When a
guard trips (a sample is imminent), the stepper flushes the folded
counters and returns at an exact block-header boundary; the entry
guard returns the ``-1`` no-progress sentinel instead, and the
dispatch loop falls back to the inherited per-block path, so the
sample fires at exactly the block boundary the reference engine fires
it at.  Inner loops keep their own standalone superblocks registered
at their headers, so a run resumed mid-nest after a sample re-enters
bulk stepping at the inner loop.  While lifecycle tracing is armed the
stepper is bypassed entirely (``ctx.mem.trace is not None``): traced
runs take exactly the per-block code paths the observability
guarantees were established on, mirroring the memory fast path's
bypass rule.

Side exits write the locals back to the register file, apply the
partial (path-prefix) counter constants for the interrupted iteration,
perform the exit edge's PHI copies, and return control to the ordinary
block dispatcher — so a probe chain that exits after 3 iterations is
still bit-exact.  Inner-loop exits inside a nest are compiled to
``break``: the partial-iteration constants fold into the running
accumulators and control falls through to the outer loop's next block
without leaving the generated function.

Two code variants are generated per superblock: a *profiled* one
(LBR pushes per taken branch, PEBS latency checks per load) used when a
sampler is armed, and a *plain* one that omits both — with the sampler
off the LBR is a NullLBR and the PEBS threshold is NEVER, so the calls
are semantic no-ops the plain variant simply does not pay for.
"""

from __future__ import annotations

import itertools
import re
from typing import Optional, Sequence

from repro.ir.nodes import Function, IRError
from repro.ir.opcodes import BINOP_EXPR, Opcode
from repro.machine.blockengine import (
    _FELL_THROUGH,
    _RETURNED,
    BlockCompiledFunction,
    _Frame,
    compile_blocks,
)
from repro.machine.config import MachineConfig
from repro.machine.context import ExecutionContext
from repro.machine.fusion import (
    ALU_OPS as _ALU_OPS,
    FusionUnit as _Unit,
    GuardedUnit as _Guarded,
    discover_units,
    flatten_unit as _flatten,
    unit_depth as _depth,
    unit_entry as _entry,
)
from repro.machine.interpreter import ExecutionLimitExceeded
from repro.machine.sampler import NEVER

_counter = itertools.count()

#: Adaptive bulk-stepping bypass: after this many bulk calls to one
#: superblock, a run whose average completed iterations per call is
#: below _ADAPT_MIN_ITERS stops bulk-stepping that loop (the per-call
#: prologue outweighs the fusion win on 1-2-trip loops).
_ADAPT_WARMUP = 64
_ADAPT_MIN_ITERS = 2

# Nest discovery and fusability live in repro.machine.fusion, shared
# with the batched superblock tier (repro.machine.batchturbo) so the
# two compilers can never disagree about what is fusable.

# ----------------------------------------------------------------------
# Codegen
# ----------------------------------------------------------------------
class _SuperblockCodegen:
    """Generates the fused-nest function for one unit.

    The generated function has the signature ``(R, st, fp)``: run fused
    iterations against register file ``R`` and frame ``st`` until an
    observation-point guard trips or a side exit is taken, and return
    the dispatch index of the block to resume at — or ``-1`` without
    touching any state when the entry guard finds an observation point
    too close to run even one worst-case iteration (the dispatch loop
    then takes the per-block path).
    """

    def __init__(
        self,
        function: Function,
        config: MachineConfig,
        base: BlockCompiledFunction,
        unit: _Unit,
    ) -> None:
        self.function = function
        self.config = config
        self.slots = base.slots
        self.block_index = base.block_index
        self.start_pc = base.block_start_pc
        self.unit = unit
        self.l1_lat = int(config.memory.l1.latency)
        self.l1_mask = config.memory.l1.sets - 1
        self.pebs_threshold = config.effective_pebs_threshold()
        self.mem_lat = int(
            config.memory.llc.latency + config.memory.dram_latency
        )
        self._totals: dict = {}  # id(unit) -> (rt, ld, sr, tk, cc)
        nest = self._nest_totals(unit)
        self.nest_totals = nest
        # Worst-case cycles / retired between two consecutive guard
        # evaluations: one iteration of every loop in the nest plus all
        # straight-line segments (see the module docstring).
        self.bound_cycles = max(1, nest[4] + nest[1] * self.mem_lat + nest[2])
        self.bound_retired = max(1, nest[0])
        self.has_ld = nest[1] > 0
        self.has_sr = nest[2] > 0
        self.has_tk = nest[3] > 0 or self._any_taken_exit(unit)
        self.preload, self.writeback = self._collect_slots()
        #: LOAD/STORE sites in the nest — each gets a functional
        #: segment-cache local (_s0, _s1, ...) in the generated code.
        self._memory_sites = nest[1] + nest[2]
        # Emission state (reset per generate()).
        self.lines: list = []
        self.indent = 0
        self._site = 0

    # -- static analysis ----------------------------------------------
    def _unit_totals(self, unit: _Unit) -> tuple:
        cached = self._totals.get(id(unit))
        if cached is None:
            cached = self._scan_totals(unit)
            self._totals[id(unit)] = cached
        return cached

    def _scan_totals(self, unit: _Unit) -> tuple:
        """One unit iteration's folded constants over its *own* blocks
        (nested units accumulate themselves), mirroring the block
        compiler's cost accounting exactly (every pending run is
        materialized by the latch terminator, so the per-iteration
        constant-cycle total is just the sum of all constant costs)."""
        cfg = self.config
        rt = nloads = nstores = tk = const_cycles = 0
        for name in unit.own_blocks:
            cont = unit.cont[name]
            for inst in self.function.block(name).non_phi_instructions():
                op = inst.op
                if op is Opcode.LOAD:
                    rt += 1
                    nloads += 1
                elif op is Opcode.STORE:
                    rt += 1
                    nstores += 1
                elif op is Opcode.PREFETCH:
                    rt += 1
                    const_cycles += cfg.prefetch_cost
                elif op is Opcode.WORK:
                    rt += inst.args[0]
                    const_cycles += inst.args[0] * cfg.work_cpi
                elif op in (Opcode.JMP, Opcode.BR):
                    rt += 1
                    const_cycles += cfg.branch_cost
                    if op is Opcode.JMP or inst.targets[0] == cont:
                        tk += 1
                elif op in _ALU_OPS:
                    rt += 1
                    const_cycles += cfg.alu_cost
                else:  # pragma: no cover - guarded by _block_is_fusable
                    raise IRError(f"unfusable opcode {op!r} on loop path")
        return rt, nloads, nstores, tk, const_cycles

    def _nest_totals(self, unit: _Unit) -> tuple:
        rt, nloads, nstores, tk, const_cycles = self._unit_totals(unit)
        for node in unit.path:
            if isinstance(node, (_Unit, _Guarded)):
                inner = node.unit if isinstance(node, _Guarded) else node
                crt, cld, csr, ctk, ccc = self._nest_totals(inner)
                rt += crt
                nloads += cld
                nstores += csr
                tk += ctk
                const_cycles += ccc
        return rt, nloads, nstores, tk, const_cycles

    def _any_taken_exit(self, unit: _Unit) -> bool:
        """Whether any side exit anywhere in the nest is a BR's *taken*
        (then) arm — those contribute to st.taken even when every
        continuation edge is fall-through.  Guard blocks whose taken
        arm enters the guarded inner unit report True the same way:
        their taken count is adjusted dynamically."""
        for name in unit.own_blocks:
            terminator = self.function.block(name).terminator
            if (
                terminator.op is Opcode.BR
                and terminator.targets[0] != unit.cont[name]
            ):
                return True
        return any(
            self._any_taken_exit(
                node.unit if isinstance(node, _Guarded) else node
            )
            for node in unit.path
            if isinstance(node, (_Unit, _Guarded))
        )

    def _tail_srcs(self, node) -> tuple:
        """The block(s) a path node transfers control *from* when it
        hands off to its in-path successor: the block itself, or — for
        a nested (possibly guarded) unit — its side-exiting blocks (all
        of which break to the unit's single continuation)."""
        if isinstance(node, _Unit):
            return node.exit_blocks
        if isinstance(node, _Guarded):
            return node.unit.exit_blocks
        return (node,)

    def _internal_edges(self, unit: _Unit) -> list:
        edges: list = []
        path = unit.path
        for i, node in enumerate(path):
            tgt = _entry(path[i + 1]) if i + 1 < len(path) else unit.header
            for src in self._tail_srcs(node):
                edges.append((src, tgt))
            if isinstance(node, _Unit):
                edges.extend(self._internal_edges(node))
            elif isinstance(node, _Guarded):
                # The guard's skip arm rejoins at the same continuation
                # the inner unit exits to.
                edges.append((node.guard, tgt))
                edges.extend(self._internal_edges(node.unit))
        return edges

    def _exit_edges(self) -> list:
        unit = self.unit
        edges: list = []
        for name in unit.own_blocks:
            terminator = self.function.block(name).terminator
            if terminator.op is Opcode.BR:
                for target in terminator.targets:
                    if (
                        target != unit.cont[name]
                        and target != unit.guards.get(name)
                    ):
                        edges.append((name, target))
        return edges

    def _collect_slots(self) -> tuple:
        """(preload, writeback) slot lists: every register the fused
        nest touches is preloaded into a local at entry; every register
        it defines is written back on every way out."""
        read: set = set()
        written: set = set()

        def visit(unit: _Unit) -> None:
            for name in unit.own_blocks:
                for inst in self.function.block(name).non_phi_instructions():
                    if inst.dst is not None:
                        written.add(inst.dst)
                    for arg in inst.args:
                        if type(arg) is not int:
                            read.add(arg)
            for node in unit.path:
                if isinstance(node, _Unit):
                    visit(node)
                elif isinstance(node, _Guarded):
                    visit(node.unit)

        visit(self.unit)
        for src, tgt in self._internal_edges(self.unit):
            for phi in self.function.block(tgt).phis():
                written.add(phi.dst)
                value = dict(phi.incomings)[src]
                if type(value) is not int:
                    read.add(value)
        for src, tgt in self._exit_edges():
            for phi in self.function.block(tgt).phis():
                incoming = dict(phi.incomings)
                if src in incoming and type(incoming[src]) is not int:
                    read.add(incoming[src])
        preload = sorted(self.slots[r] for r in read | written)
        writeback = sorted(self.slots[r] for r in written)
        return preload, writeback

    # -- emission helpers ---------------------------------------------
    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def _emit_l1_probe(self) -> None:
        """Inline the L1 front-path probe (pop from the structural set
        view; a hit leaves ``_f``/``_set``/``_line`` for the hit arm)."""
        self.emit("_line = _a >> 6")
        self.emit(f"_set = L1S[_line & {self.l1_mask}]")
        self.emit("_f = _set.pop(_line, None)")

    def _emit_functional(
        self, assign: str, fallback: str, store_value
    ) -> None:
        """Functional access through a per-callsite segment cache.

        The cache holds the last Segment this site touched; a hit costs
        a bounds check and a list index instead of two function calls.
        Any irregular case — segment miss (unmapped) or misaligned
        address — delegates to the AddressSpace method, which raises
        the exact error the slow engines raise.
        """
        site = self._site
        self._site += 1
        s = f"_s{site}"
        self.emit(f"if {s} is None or not ({s}.base <= _a < {s}.end):")
        self.emit(f"    {s} = sp_find(_a)")
        self.emit(f"if {s} is None:")
        self.emit(f"    {assign}{fallback}")
        self.emit("else:")
        self.emit(f"    _o = _a - {s}.base")
        self.emit(f"    if _o & ({s}.elem_size - 1):")
        self.emit(f"        {assign}{fallback}")
        self.emit("    else:")
        if store_value is None:
            self.emit(f"        {assign}{s}.values[_o // {s}.elem_size]")
        else:
            self.emit(
                f"        {s}.values[_o // {s}.elem_size] = {store_value}"
            )

    def operand(self, value) -> str:
        if type(value) is int:
            return repr(value)
        return f"r{self.slots[value]}"

    def _edge_copy_lines(self, src: str, tgt: str) -> list:
        """PHI parallel copies for an in-nest edge, locals -> locals."""
        values = []
        for phi in self.function.block(tgt).phis():
            incoming = dict(phi.incomings)
            if src not in incoming:
                raise IRError(
                    f"phi {phi.dst} in {tgt} lacks incoming from {src}"
                )
            values.append(
                (f"r{self.slots[phi.dst]}", self.operand(incoming[src]))
            )
        if len(values) == 1:
            dst, expr = values[0]
            return [] if dst == expr else [f"{dst} = {expr}"]
        # The copies are parallel; sequential direct assignments are
        # only safe when no destination is read by a later copy.
        # Sources are single registers or literals, so a membership
        # check decides it — the temp scheme is the fallback.
        dsts = {dst for dst, _ in values}
        if all(expr not in dsts for dst, expr in values if expr != dst):
            return [f"{dst} = {expr}" for dst, expr in values if dst != expr]
        lines = [f"_p{i} = {expr}" for i, (_, expr) in enumerate(values)]
        lines += [f"{dst} = _p{i}" for i, (dst, _) in enumerate(values)]
        return lines

    def _emit_flush(self, extra: tuple) -> None:
        """Write the folded counters and locals back to the frame and
        register file: the running accumulators plus ``extra`` constant
        counts from interrupted (prefix) iterations."""
        ert, eld, esr, etk = extra
        self.emit("st.cycle = cycle")
        self.emit(f"st.retired += _rt + {ert}" if ert else "st.retired += _rt")
        if self.has_ld:
            self.emit(
                f"st.loads += _ld + {eld}" if eld else "st.loads += _ld"
            )
        if self.has_sr:
            self.emit(
                f"st.stores += _sr + {esr}" if esr else "st.stores += _sr"
            )
        if self.has_tk:
            self.emit(
                f"st.taken += _tk + {etk}" if etk else "st.taken += _tk"
            )
        for slot in self.writeback:
            self.emit(f"R[{slot}] = r{slot}")

    def _emit_unit_exit(
        self,
        src: str,
        exit_name: str,
        prefix: list,
        taken: bool,
        unit: _Unit,
        carried: tuple,
    ) -> None:
        """A side exit from ``unit``.  For the outermost unit: flush
        everything (accumulators + carried enclosing prefixes + this
        iteration's prefix), run the exit edge's PHI copies straight
        into R, and return the exit block's dispatch index.  For a
        nested unit: fold the partial iteration into the accumulators,
        run the break edge's PHI copies (the continuation is fused
        too, so its PHIs are locals), and ``break`` to the enclosing
        loop's next block."""
        tk_extra = prefix[3] + (1 if taken else 0)
        if unit is self.unit:
            self._emit_flush(
                (
                    carried[0] + prefix[0],
                    carried[1] + prefix[1],
                    carried[2] + prefix[2],
                    carried[3] + tk_extra,
                )
            )
            # Exit copies come last: they are the final writes the edge
            # performs, and their sources are locals, so ordering is
            # safe.
            for phi in self.function.block(exit_name).phis():
                incoming = dict(phi.incomings)
                if src not in incoming:
                    raise IRError(
                        f"phi {phi.dst} in {exit_name} lacks incoming "
                        f"from {src}"
                    )
                self.emit(
                    f"R[{self.slots[phi.dst]}] = "
                    f"{self.operand(incoming[src])}"
                )
            self.emit(f"return {self.block_index[exit_name]}")
        else:
            self.emit(f"_rt += {prefix[0]}")
            if prefix[1]:
                self.emit(f"_ld += {prefix[1]}")
            if prefix[2]:
                self.emit(f"_sr += {prefix[2]}")
            if tk_extra:
                self.emit(f"_tk += {tk_extra}")
            for line in self._edge_copy_lines(src, exit_name):
                self.emit(line)
            self.emit("break")

    # -- main ----------------------------------------------------------
    #: Prologue binds, in emission order; only the ones the generated
    #: body actually references are emitted (a bulk call for a
    #: short-trip loop is dominated by its prologue, so every dead bind
    #: costs real time — see the adaptive bypass in
    #: TurboCompiledFunction).
    _BINDS = (
        ("mem_load", "st.mem_load"),
        ("mem_store", "st.mem_store"),
        ("mem_prefetch", "st.mem_prefetch"),
        ("sp_load", "st.sp_load"),
        ("sp_store", "st.sp_store"),
        # Inlined L1-hit front path (repro.mem.fastpath views) and the
        # per-callsite functional segment caches.
        ("L1S", "fp._l1_sets"),
        ("C", "fp._counters"),
        ("UN", "fp._unused"),
        ("sp_find", "fp.mem.space._find"),
        ("lbr_push", "st.lbr_push"),
        ("record_load", "st.record_load"),
        ("pebs_threshold", "st.pebs_threshold"),
    )

    def generate(self, profiled: bool) -> str:
        # The body is generated first so the prologue can bind lazily:
        # only names the body references get a bind line.
        self.lines = []
        self.indent = 1
        self._site = 0

        # Guard limits, hoisted: ``cycle + B >= next_sample`` becomes
        # ``cycle >= _gc`` and ``ret0 + _rt + K > max_instructions``
        # becomes ``_rt + K > _gm`` — same integer arithmetic, but the
        # per-iteration guards lose two additions.  Both bounds are
        # run-constant while the superblock holds the core (a sample
        # can only fire in per-block dispatch, after the guard bails).
        self.emit("cycle = st.cycle")
        self.emit(f"_gc = st.next_sample - {self.bound_cycles}")
        self.emit("_gm = st.max_instructions - st.retired")
        self.emit(f"if cycle >= _gc or {self.bound_retired} > _gm:")
        self.emit("    return -1")
        for slot in self.preload:
            self.emit(f"r{slot} = R[{slot}]")
        self.emit("_rt = 0")
        if self.has_ld:
            self.emit("_ld = 0")
        if self.has_sr:
            self.emit("_sr = 0")
        if self.has_tk:
            self.emit("_tk = 0")
        self._emit_unit(self.unit, (0, 0, 0, 0), profiled)

        body = self.lines
        used = set(
            re.findall(
                r"\b(?:mem_load|mem_store|mem_prefetch|sp_load|sp_store"
                r"|L1S|C|UN|sp_find|lbr_push|record_load|pebs_threshold)\b",
                "\n".join(body),
            )
        )
        header = ["def __superblock(R, st, fp):"]
        for name, expr in self._BINDS:
            if name in used:
                header.append(f"    {name} = {expr}")
        for site in range(self._memory_sites):
            header.append(f"    _s{site} = None")
        return "\n".join(header + body)

    def _emit_unit(
        self, unit: _Unit, carried: tuple, profiled: bool
    ) -> None:
        """One (possibly nested) fused loop.  ``carried`` is the
        constant (rt, loads, stores, taken) prefix of every enclosing,
        not-yet-completed iteration — enclosing loops only accumulate
        at their own back edges, so a flush from inside must add the
        work their current iterations have already done."""
        self.emit("while True:")
        self.indent += 1
        prefix = [0, 0, 0, 0]  # running rt / loads / stores / taken
        path = unit.path
        for i, node in enumerate(path):
            if isinstance(node, _Guarded):
                continue  # emitted inside its guard block's BR arm
            if isinstance(node, _Unit):
                inner_carried = (
                    carried[0] + prefix[0],
                    carried[1] + prefix[1],
                    carried[2] + prefix[2],
                    carried[3] + prefix[3],
                )
                self._emit_unit(node, inner_carried, profiled)
            else:
                nxt = path[i + 1] if i + 1 < len(path) else None
                self._emit_block(
                    node,
                    prefix,
                    profiled,
                    unit,
                    carried,
                    nxt if isinstance(nxt, _Guarded) else None,
                )
        # The back edge: fold one completed iteration into the
        # accumulators, then guard the distance to the next
        # observation point (the mutant needle for repro.qa targets
        # this accumulation line — keep it on one line).
        rt, nloads, nstores, tk, _ = self._unit_totals(unit)
        self.emit(f"_rt += {rt}")
        if nloads:
            self.emit(f"_ld += {nloads}")
        if nstores:
            self.emit(f"_sr += {nstores}")
        if tk:
            self.emit(f"_tk += {tk}")
        self.emit(
            f"if cycle >= _gc "
            f"or _rt + {self.bound_retired + carried[0]} > _gm:"
        )
        self.indent += 1
        self._emit_flush(carried)
        self.emit(f"return {self.block_index[unit.header]}")
        self.indent -= 1
        self.indent -= 1

    def _emit_block(
        self,
        name: str,
        prefix: list,
        profiled: bool,
        unit: _Unit,
        carried: tuple,
        guarded: Optional[_Guarded] = None,
    ) -> None:
        cfg = self.config
        block = self.function.block(name)
        cont = unit.cont[name]
        pending = 0

        def flush() -> None:
            nonlocal pending
            if pending:
                self.emit(f"cycle += {pending}")
                pending = 0

        for inst in block.non_phi_instructions():
            op = inst.op
            if op in BINOP_EXPR:
                expr = BINOP_EXPR[op].format(
                    a=self.operand(inst.args[0]),
                    b=self.operand(inst.args[1]),
                )
                self.emit(f"r{self.slots[inst.dst]} = {expr}")
                pending += cfg.alu_cost
                prefix[0] += 1
            elif op is Opcode.GEP:
                base, index, scale = inst.args
                if type(index) is int:
                    expr = f"{self.operand(base)} + {index * scale}"
                elif scale == 1:
                    expr = f"{self.operand(base)} + {self.operand(index)}"
                else:
                    expr = (
                        f"{self.operand(base)} + {self.operand(index)}*{scale}"
                    )
                self.emit(f"r{self.slots[inst.dst]} = {expr}")
                pending += cfg.alu_cost
                prefix[0] += 1
            elif op is Opcode.CONST:
                self.emit(f"r{self.slots[inst.dst]} = {inst.args[0]!r}")
                pending += cfg.alu_cost
                prefix[0] += 1
            elif op is Opcode.MOV:
                self.emit(
                    f"r{self.slots[inst.dst]} = {self.operand(inst.args[0])}"
                )
                pending += cfg.alu_cost
                prefix[0] += 1
            elif op is Opcode.SELECT:
                cond, a, b = (self.operand(v) for v in inst.args)
                self.emit(
                    f"r{self.slots[inst.dst]} = "
                    f"({a}) if ({cond}) else ({b})"
                )
                pending += cfg.alu_cost
                prefix[0] += 1
            elif op is Opcode.LOAD:
                flush()
                self.emit(f"_a = {self.operand(inst.args[0])}")
                self._emit_l1_probe()
                self.emit("if _f is None:")
                self.emit(f"    _l = mem_load(_a, cycle, {inst.pc})")
                if profiled:
                    self.emit("    if _l >= pebs_threshold:")
                    self.emit(f"        record_load({inst.pc}, _l)")
                self.emit("else:")
                self.emit("    _set[_line] = _f")
                self.emit("    C.l1_hits += 1")
                self.emit("    if UN:")
                self.emit("        _sw = UN.pop(_line, None)")
                self.emit("        if _sw is not None:")
                self.emit("            if _sw:")
                self.emit("                C.sw_prefetch_useful += 1")
                self.emit("            else:")
                self.emit("                C.hw_prefetch_useful += 1")
                self.emit(f"    _l = {self.l1_lat}")
                if profiled and self.l1_lat >= self.pebs_threshold:
                    self.emit(f"    record_load({inst.pc}, {self.l1_lat})")
                self.emit("cycle += _l")
                self._emit_functional(
                    f"r{self.slots[inst.dst]} = ", "sp_load(_a)", None
                )
                prefix[0] += 1
                prefix[1] += 1
            elif op is Opcode.STORE:
                flush()
                self.emit(f"_a = {self.operand(inst.args[0])}")
                self._emit_l1_probe()
                self.emit("if _f is None:")
                self.emit(f"    cycle += mem_store(_a, cycle, {inst.pc})")
                self.emit("else:")
                self.emit("    _set[_line] = _f")
                self.emit("    if UN:")
                self.emit("        _sw = UN.pop(_line, None)")
                self.emit("        if _sw is not None:")
                self.emit("            if _sw:")
                self.emit("                C.sw_prefetch_useful += 1")
                self.emit("            else:")
                self.emit("                C.hw_prefetch_useful += 1")
                self.emit("    cycle += 1")
                value = self.operand(inst.args[1])
                self._emit_functional("", f"sp_store(_a, {value})", value)
                prefix[0] += 1
                prefix[2] += 1
            elif op is Opcode.PREFETCH:
                flush()
                self.emit(
                    f"mem_prefetch({self.operand(inst.args[0])}, "
                    f"cycle, {inst.pc})"
                )
                pending += cfg.prefetch_cost
                prefix[0] += 1
            elif op is Opcode.WORK:
                amount = inst.args[0]
                pending += amount * cfg.work_cpi
                prefix[0] += amount
            elif op is Opcode.JMP:
                pending += cfg.branch_cost
                prefix[0] += 1
                flush()
                target = inst.targets[0]
                if profiled:
                    self.emit(
                        f"lbr_push(({inst.pc}, "
                        f"{self.start_pc[target]}, cycle))"
                    )
                prefix[3] += 1
                for line in self._edge_copy_lines(name, target):
                    self.emit(line)
                # Back edge (target == unit header): iteration ends at
                # the enclosing while's bottom (accumulate + guard).
                # Internal edge: fall straight into the next node.
            elif op is Opcode.BR:
                pending += cfg.branch_cost
                prefix[0] += 1
                flush()
                then_target, else_target = inst.targets
                cond = self.operand(inst.args[0])
                if guarded is not None:
                    # Guarded inner unit: one arm runs the whole fused
                    # inner loop, the other skips it; both rejoin at
                    # ``guarded.skip`` (the next path node).  The
                    # static taken count follows _scan_totals (counted
                    # iff the skip arm is the taken arm), with the
                    # other arm correcting _tk dynamically.
                    enter = guarded.unit.header
                    skip = guarded.skip
                    if not guarded.enter_on_true:
                        prefix[3] += 1
                    arm = "if {}:" if guarded.enter_on_true else (
                        "if not ({}):"
                    )
                    self.emit(arm.format(cond))
                    self.indent += 1
                    if guarded.enter_on_true:
                        if profiled:
                            self.emit(
                                f"lbr_push(({inst.pc}, "
                                f"{self.start_pc[enter]}, cycle))"
                            )
                        self.emit("_tk += 1")
                    else:
                        self.emit("_tk -= 1")
                    for line in self._edge_copy_lines(name, enter):
                        self.emit(line)
                    inner_carried = (
                        carried[0] + prefix[0],
                        carried[1] + prefix[1],
                        carried[2] + prefix[2],
                        carried[3] + prefix[3],
                    )
                    self._emit_unit(guarded.unit, inner_carried, profiled)
                    self.indent -= 1
                    self.emit("else:")
                    self.indent += 1
                    if not guarded.enter_on_true and profiled:
                        self.emit(
                            f"lbr_push(({inst.pc}, "
                            f"{self.start_pc[skip]}, cycle))"
                        )
                    skip_copies = self._edge_copy_lines(name, skip)
                    for line in skip_copies:
                        self.emit(line)
                    if not skip_copies and not (
                        not guarded.enter_on_true and profiled
                    ):
                        self.emit("pass")
                    self.indent -= 1
                    continue
                if then_target == cont:
                    # Exit is the untaken (else) arm.
                    self.emit(f"if not ({cond}):")
                    self.indent += 1
                    self._emit_unit_exit(
                        name, else_target, prefix, False, unit, carried
                    )
                    self.indent -= 1
                    if profiled:
                        self.emit(
                            f"lbr_push(({inst.pc}, "
                            f"{self.start_pc[then_target]}, cycle))"
                        )
                    prefix[3] += 1
                    continuation = then_target
                else:
                    # Exit is the taken (then) arm.
                    self.emit(f"if {cond}:")
                    self.indent += 1
                    if profiled:
                        self.emit(
                            f"lbr_push(({inst.pc}, "
                            f"{self.start_pc[then_target]}, cycle))"
                        )
                    self._emit_unit_exit(
                        name, then_target, prefix, True, unit, carried
                    )
                    self.indent -= 1
                    continuation = else_target
                for line in self._edge_copy_lines(name, continuation):
                    self.emit(line)
            else:  # pragma: no cover - guarded by _block_is_fusable
                raise IRError(f"unhandled opcode {op!r} in superblock")


# ----------------------------------------------------------------------
# Superblock container + the turbo compiled function
# ----------------------------------------------------------------------
class Superblock:
    """One fused loop nest: the two generated steppers plus the
    compile-time constants the dispatch loop needs."""

    __slots__ = (
        "header",
        "header_index",
        "path",
        "depth",
        "run_plain",
        "run_profiled",
        "source_plain",
        "source_profiled",
        "bound_cycles",
        "bound_retired",
    )

    def __init__(
        self,
        header: str,
        header_index: int,
        path: tuple,
        depth: int,
        run_plain,
        run_profiled,
        source_plain: str,
        source_profiled: str,
        bound_cycles: int,
        bound_retired: int,
    ) -> None:
        self.header = header
        self.header_index = header_index
        self.path = path  # flattened block names, execution order
        self.depth = depth  # nesting depth (1 = a plain linear loop)
        self.run_plain = run_plain
        self.run_profiled = run_profiled
        self.source_plain = source_plain
        self.source_profiled = source_profiled
        self.bound_cycles = bound_cycles
        self.bound_retired = bound_retired


def _build_superblock(
    function: Function,
    config: MachineConfig,
    base: BlockCompiledFunction,
    unit: _Unit,
) -> Superblock:
    codegen = _SuperblockCodegen(function, config, base, unit)
    compiled = {}
    sources = {}
    for profiled in (False, True):
        source = codegen.generate(profiled)
        variant = "profiled" if profiled else "plain"
        filename = (
            f"<superblock:{function.name}:{unit.header}:{variant}:"
            f"{next(_counter)}>"
        )
        namespace: dict = {}
        exec(compile(source, filename, "exec"), namespace)  # noqa: S102
        compiled[profiled] = namespace["__superblock"]
        sources[profiled] = source
    return Superblock(
        header=unit.header,
        header_index=base.block_index[unit.header],
        path=tuple(_flatten(unit)),
        depth=_depth(unit),
        run_plain=compiled[False],
        run_profiled=compiled[True],
        source_plain=sources[False],
        source_profiled=sources[True],
        bound_cycles=codegen.bound_cycles,
        bound_retired=codegen.bound_retired,
    )


class TurboCompiledFunction(BlockCompiledFunction):
    """The fast engine's per-block chains plus superblock steppers.

    Blocks that are not fused headers dispatch exactly as the fast
    engine does; a fused header hands control to the generated stepper,
    which runs iterations in bulk until an observation-point guard
    trips — or declines outright (``-1``: sample imminent) so the
    per-block path can honour the observation at the exact reference
    boundary.  Tracing armed disables bulk stepping for the run.
    """

    def __init__(
        self, base: BlockCompiledFunction, superblocks: tuple
    ) -> None:
        super().__init__(
            base.function,
            base._blocks,
            base._block_names,
            base._entry,
            base._register_count,
            slots=base.slots,
            block_index=base.block_index,
            block_start_pc=base.block_start_pc,
        )
        self._superblocks = superblocks  # per-block-index, None when unfused
        # Cumulative run-profiling tallies (telemetry's engine.run span
        # reads these; they live on the compiled function, never in the
        # PMU counters, so traced==untraced bit-identity is untouched).
        self.bulk_calls = 0
        self.bulk_iters = 0
        self.guard_declines = 0
        self.adaptive_cleared = 0

    def superblocks(self) -> list:
        """The fused loops (debug/test aid)."""
        return [sb for sb in self._superblocks if sb is not None]

    def stats(self) -> dict:
        stats = super().stats()
        fused = self.superblocks()
        stats["superblocks"] = len(fused)
        stats["fused_blocks"] = sum(len(sb.path) for sb in fused)
        stats["max_fusion_depth"] = max(
            (sb.depth for sb in fused), default=0
        )
        stats["bulk_calls"] = self.bulk_calls
        stats["bulk_iters"] = self.bulk_iters
        stats["guard_declines"] = self.guard_declines
        stats["adaptive_cleared"] = self.adaptive_cleared
        return stats

    def __call__(self, ctx: ExecutionContext, args: Sequence[int] = ()) -> int:
        function = self.function
        if len(args) != len(function.params):
            raise IRError(
                f"{function.name} expects {len(function.params)} args, "
                f"got {len(args)}"
            )
        config = ctx.config
        counters = ctx.counters
        mem = ctx.mem
        space = ctx.space
        sampler = ctx.sampler

        st = _Frame()
        st.counters = counters
        st.mem_load = mem.load_port()
        st.mem_store = mem.store_port()
        st.mem_prefetch = mem.prefetch_port()
        st.sp_load = space.load
        st.sp_store = space.store
        st.lbr_push = ctx.lbr.push
        st.invoke = ctx.invoke
        st.sampler = sampler
        if sampler is not None:
            st.next_sample = sampler.next_at
            st.take = sampler.take
            st.pebs_threshold = config.effective_pebs_threshold()
            st.record_load = sampler.record_load
        else:
            st.next_sample = NEVER
            st.take = None
            st.pebs_threshold = NEVER
            st.record_load = None
        max_instructions = config.max_instructions
        st.max_instructions = max_instructions
        st.cycle = int(counters.cycles)
        st.retired = 0
        st.loads = 0
        st.stores = 0
        st.taken = 0
        st.value = 0

        R = [0] * self._register_count
        for slot, value in enumerate(args):  # params occupy slots 0..n-1
            R[slot] = int(value)

        blocks = self._blocks
        # Trace armed -> observation points are everywhere; bulk
        # stepping is disabled for the whole run (same bypass rule as
        # the memory fast path).  The list is a per-run copy: a fused
        # loop whose *dynamic* trip counts turn out tiny (a hash-probe
        # chain averaging 1-2 iterations) pays more in per-bulk-call
        # prologue than fusion saves, so after a warmup its slot is
        # cleared and dispatch falls back to the per-block path —
        # bit-identical either way, purely a time/space trade.
        superblocks = list(self._superblocks) if mem.trace is None else None
        front = mem.front() if superblocks is not None else None
        if superblocks is not None:
            sb_calls = [0] * len(superblocks)
            sb_iters = [0] * len(superblocks)
        profiled = sampler is not None
        declined = 0
        bi = self._entry
        try:
            while True:
                if st.cycle >= st.next_sample:
                    st.next_sample = st.take(st.cycle)
                if st.retired > max_instructions:
                    raise ExecutionLimitExceeded(
                        f"{function.name}: exceeded {max_instructions} instructions"
                    )
                if superblocks is not None:
                    sb = superblocks[bi]
                    if sb is not None:
                        run = sb.run_profiled if profiled else sb.run_plain
                        before = st.retired
                        nxt = run(R, st, front)
                        if nxt >= 0:
                            calls = sb_calls[bi] + 1
                            sb_calls[bi] = calls
                            sb_iters[bi] += (
                                st.retired - before
                            ) // sb.bound_retired
                            if calls == _ADAPT_WARMUP and (
                                sb_iters[bi] < calls * _ADAPT_MIN_ITERS
                            ):
                                superblocks[bi] = None
                            bi = nxt
                            continue
                        declined += 1
                st.next = _FELL_THROUGH
                for op in blocks[bi]:
                    op(R, st)
                nxt = st.next
                if nxt < 0:
                    if nxt == _RETURNED:
                        return st.value
                    raise IRError(
                        f"block {self._block_names[bi]} fell through "
                        f"without terminator"
                    )
                bi = nxt
        finally:
            if superblocks is not None:
                self.bulk_calls += sum(sb_calls)
                self.bulk_iters += sum(sb_iters)
                self.guard_declines += declined
                self.adaptive_cleared += sum(
                    1
                    for original, current in zip(
                        self._superblocks, superblocks
                    )
                    if original is not None and current is None
                )


def compile_turbo(
    function: Function, config: Optional[MachineConfig] = None
) -> TurboCompiledFunction:
    """Compile one finalized IR function for the turbo tier: the fast
    engine's block chains plus a fused superblock per linear loop,
    built innermost-first so outer loops absorb fused inner loops into
    one nest.  Inner loops keep their standalone superblocks registered
    at their own headers — that is where a run resumed after a
    mid-nest sample re-enters bulk stepping."""
    config = config or MachineConfig()
    base = compile_blocks(function, config)
    superblocks: list = [None] * len(base._blocks)
    for unit in discover_units(function).values():
        superblocks[base.block_index[unit.header]] = _build_superblock(
            function, config, base, unit
        )
    return TurboCompiledFunction(base, tuple(superblocks))
