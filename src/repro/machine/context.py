"""Shared execution context handed to the engines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

from repro.machine.config import MachineConfig
from repro.machine.lbr import LastBranchRecord, NullLBR
from repro.machine.pmu import Counters
from repro.machine.sampler import ProfileSampler
from repro.mem.address import AddressSpace
from repro.mem.hierarchy import MemorySystem

#: CALL trampoline: (callee_name, args, from_pc) -> return value.  The
#: owner (Machine) runs the callee on the same engine with the shared
#: clock (counters.cycles is the canonical time across the call).
InvokeFn = Callable[[str, Sequence[int], int], int]


@dataclass
class ExecutionContext:
    """Everything an engine needs: functional memory, timing model,
    counters, LBR, optional sampler, the cost model, and the CALL
    trampoline."""

    space: AddressSpace
    mem: MemorySystem
    counters: Counters
    lbr: Union[LastBranchRecord, NullLBR]
    config: MachineConfig
    sampler: Optional[ProfileSampler] = None
    invoke: Optional[InvokeFn] = None
    #: Observability sink (repro.obs.trace.PrefetchTrace) when tracing
    #: is enabled.  The engines never touch it directly — the memory
    #: system and the LBR tap feed it — but it rides in the context so
    #: cost models and future engine-level events can reach it.
    trace: Optional[object] = None
