"""Fast execution engine: per-block chains of pre-resolved op closures.

The reference interpreter pays, for every executed instruction, an
opcode if-chain plus one ``resolve()`` call per operand (a function
call, a ``type`` test, and a dict lookup).  This engine performs all of
that work **once per function**: each basic block is compiled to a flat
list of specialized closures with operands already bound — virtual
registers become integer slots in a flat register file, immediates
become closure constants, and the opcode dispatch disappears entirely.
It is the same profile-guided idea the paper applies to hot loads
(specialize the common case, keep the general path for the rest)
applied to our own hot loop.

Relationship to the other engines:

* ``reference`` (``repro.machine.interpreter``) is the obviously-correct
  baseline.  This engine must match it bit-for-bit on cycles, PMU
  counters, LBR contents and PEBS sample sets — asserted across the
  whole workload registry by the differential tests.
* ``translate`` (``repro.machine.translator``) generates Python source
  and ``exec``\\ s one function object per IR function.  The block
  engine reaches similar inner-loop speed without any per-function
  ``exec``/parse (its per-function compile is just closure allocation),
  so cold-start cost stays negligible for modules with many functions.

Cost folding follows the translator exactly: runs of constant-cost ALU
instructions accumulate a pending cycle count that is materialized at
the next *observer* (memory op, CALL, dynamic WORK, or terminator), and
per-block retired/load/store counts are folded into the terminator.
Nothing observes ``cycle`` or the counters between those points, so the
folded schedule is bit-identical to the interpreter's per-instruction
accumulation (all costs are integers).

Demand loads and stores are issued through
:meth:`MemorySystem.load_port` / :meth:`store_port`, which hand out the
L1 front fast path (``repro.mem.fastpath``) when no lifecycle trace is
attached and the plain slow-path methods when one is.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.ir.nodes import Function, IRError
from repro.ir.opcodes import BINOP_EXPR, Opcode
from repro.machine.config import MachineConfig
from repro.machine.context import ExecutionContext
from repro.machine.interpreter import ExecutionLimitExceeded
from repro.machine.sampler import NEVER

#: Sentinels stored in ``_Frame.next`` by terminator closures.
_RETURNED = -1
_FELL_THROUGH = -2


class _Frame:
    """Mutable per-run state shared by the op closures.

    Slots keep attribute access on the hot path as cheap as Python
    allows short of code generation; everything an op can touch lives
    here so closures need only their compile-time constants plus this
    one object.
    """

    __slots__ = (
        "cycle",
        "retired",
        "loads",
        "stores",
        "taken",
        "next",
        "value",
        "next_sample",
        "max_instructions",
        "sampler",
        "take",
        "pebs_threshold",
        "record_load",
        "mem_load",
        "mem_store",
        "mem_prefetch",
        "sp_load",
        "sp_store",
        "lbr_push",
        "invoke",
        "counters",
    )


# ----------------------------------------------------------------------
# Specialized op factories.  Each returns a closure ``op(R, st)`` with
# its operands pre-bound as default arguments (LOAD_FAST, not cell
# lookups).  ``R`` is the flat register file, ``st`` the _Frame.
# ----------------------------------------------------------------------
def _build_binop_factories() -> dict:
    """Generate, once at import, the 4 operand-shape variants of every
    binary opcode from the shared ``BINOP_EXPR`` templates."""
    factories: dict = {}
    for opcode, expr in BINOP_EXPR.items():
        variants = {}
        for a_is_reg in (False, True):
            for b_is_reg in (False, True):
                body = expr.format(
                    a="R[a]" if a_is_reg else "a",
                    b="R[b]" if b_is_reg else "b",
                )
                name = f"_factory_{opcode.name}_{int(a_is_reg)}{int(b_is_reg)}"
                source = (
                    f"def {name}(dst, a, b):\n"
                    f"    def op(R, st, dst=dst, a=a, b=b):\n"
                    f"        R[dst] = {body}\n"
                    f"    return op\n"
                )
                namespace = {"min": min, "max": max}
                exec(source, namespace)  # noqa: S102 - trusted templates
                variants[(a_is_reg, b_is_reg)] = namespace[name]
        factories[opcode] = variants
    return factories


_BINOP_FACTORIES = _build_binop_factories()


def _const_op(dst: int, value: int):
    def op(R, st, dst=dst, value=value):
        R[dst] = value

    return op


def _mov_op(dst: int, aspec):
    a_is_reg, a = aspec
    if a_is_reg:

        def op(R, st, dst=dst, a=a):
            R[dst] = R[a]

    else:

        def op(R, st, dst=dst, a=a):
            R[dst] = a

    return op


def _select_op(dst: int, cspec, aspec, bspec):
    cm, cv = cspec
    am, av = aspec
    bm, bv = bspec

    def op(R, st, dst=dst, cm=cm, cv=cv, am=am, av=av, bm=bm, bv=bv):
        if R[cv] if cm else cv:
            R[dst] = R[av] if am else av
        else:
            R[dst] = R[bv] if bm else bv

    return op


def _gep_op(dst: int, basespec, indexspec, scale: int):
    bm, bv = basespec
    im, iv = indexspec
    if not im:  # constant index: fold index*scale at compile time
        offset = iv * scale
        if bm:

            def op(R, st, dst=dst, b=bv, off=offset):
                R[dst] = R[b] + off

        else:
            value = bv + offset

            def op(R, st, dst=dst, value=value):
                R[dst] = value

    elif scale == 1:
        if bm:

            def op(R, st, dst=dst, b=bv, i=iv):
                R[dst] = R[b] + R[i]

        else:

            def op(R, st, dst=dst, b=bv, i=iv):
                R[dst] = b + R[i]

    else:
        if bm:

            def op(R, st, dst=dst, b=bv, i=iv, s=scale):
                R[dst] = R[b] + R[i] * s

        else:

            def op(R, st, dst=dst, b=bv, i=iv, s=scale):
                R[dst] = b + R[i] * s

    return op


def _load_op(dst: int, aspec, pc: int, pending: int):
    a_is_reg, a = aspec
    if a_is_reg:
        if pending:

            def op(R, st, dst=dst, a=a, pc=pc, k=pending):
                st.cycle += k
                addr = R[a]
                now = st.cycle
                latency = st.mem_load(addr, now, pc)
                st.cycle = now + latency
                if latency >= st.pebs_threshold:
                    st.record_load(pc, latency)
                R[dst] = st.sp_load(addr)

        else:

            def op(R, st, dst=dst, a=a, pc=pc):
                addr = R[a]
                now = st.cycle
                latency = st.mem_load(addr, now, pc)
                st.cycle = now + latency
                if latency >= st.pebs_threshold:
                    st.record_load(pc, latency)
                R[dst] = st.sp_load(addr)

    else:

        def op(R, st, dst=dst, addr=a, pc=pc, k=pending):
            if k:
                st.cycle += k
            now = st.cycle
            latency = st.mem_load(addr, now, pc)
            st.cycle = now + latency
            if latency >= st.pebs_threshold:
                st.record_load(pc, latency)
            R[dst] = st.sp_load(addr)

    return op


def _store_op(aspec, vspec, pc: int, pending: int):
    am, av = aspec
    vm, vv = vspec

    def op(R, st, am=am, av=av, vm=vm, vv=vv, pc=pc, k=pending):
        if k:
            st.cycle += k
        addr = R[av] if am else av
        now = st.cycle
        st.cycle = now + st.mem_store(addr, now, pc)
        st.sp_store(addr, R[vv] if vm else vv)

    return op


def _prefetch_op(aspec, pc: int, pending: int):
    a_is_reg, a = aspec
    if a_is_reg:

        def op(R, st, a=a, pc=pc, k=pending):
            if k:
                st.cycle += k
            st.mem_prefetch(R[a], st.cycle, pc)

    else:

        def op(R, st, addr=a, pc=pc, k=pending):
            if k:
                st.cycle += k
            st.mem_prefetch(addr, st.cycle, pc)

    return op


def _work_op(slot: int, pending: int, work_cpi: int):
    """Dynamic WORK: amount read from a register at run time.

    Retires immediately (interpreter semantics); the constant-amount
    form is folded into pending/retired like any ALU instruction.
    """

    def op(R, st, a=slot, k=pending, cpi=work_cpi):
        if k:
            st.cycle += k
        amount = R[a]
        st.cycle += amount * cpi
        st.retired += amount

    return op


def _call_op(dst: int, callee: str, argspec: tuple, pc: int, pending: int):
    def op(R, st, dst=dst, callee=callee, argspec=argspec, pc=pc, k=pending):
        st.cycle += k
        invoke = st.invoke
        if invoke is None:
            raise IRError("CALL executed without an invoke trampoline")
        counters = st.counters
        counters.cycles = st.cycle
        R[dst] = invoke(
            callee, tuple((R[v] if m else v) for m, v in argspec), pc
        )
        st.cycle = int(counters.cycles)
        sampler = st.sampler
        if sampler is not None:
            st.next_sample = sampler.next_at

    return op


# ----------------------------------------------------------------------
# Terminators: materialize the block's folded costs, record the branch,
# perform the taken edge's PHI copies, and select the next block.
# ----------------------------------------------------------------------
def _edge_copies(pairs: list) -> Optional[Callable]:
    """Parallel-copy closure for one CFG edge; ``pairs`` is a list of
    ``(dst_slot, src_is_reg, src)``.  Returns None for phi-less edges."""
    if not pairs:
        return None
    if len(pairs) == 1:
        d, m, s = pairs[0]
        if m:

            def copy(R, d=d, s=s):
                R[d] = R[s]

        else:

            def copy(R, d=d, s=s):
                R[d] = s

        return copy
    if len(pairs) == 2:
        (d0, m0, s0), (d1, m1, s1) = pairs

        def copy(R, d0=d0, m0=m0, s0=s0, d1=d1, m1=m1, s1=s1):
            v0 = R[s0] if m0 else s0
            v1 = R[s1] if m1 else s1
            R[d0] = v0
            R[d1] = v1

        return copy
    dsts = tuple(p[0] for p in pairs)
    srcs = tuple((p[1], p[2]) for p in pairs)

    def copy(R, dsts=dsts, srcs=srcs):
        values = [R[s] if m else s for m, s in srcs]
        for d, v in zip(dsts, values):
            R[d] = v

    return copy


def _jmp_op(pc, target_pc, target_index, copies, pending, retired, nloads, nstores):
    def op(
        R,
        st,
        pc=pc,
        tpc=target_pc,
        ti=target_index,
        copies=copies,
        k=pending,
        rt=retired,
        nl=nloads,
        ns=nstores,
    ):
        st.cycle += k
        st.retired += rt
        if nl:
            st.loads += nl
        if ns:
            st.stores += ns
        st.taken += 1
        st.lbr_push((pc, tpc, st.cycle))
        if copies is not None:
            copies(R)
        st.next = ti

    return op


def _br_op(
    cspec,
    pc,
    then_pc,
    then_index,
    then_copies,
    else_index,
    else_copies,
    pending,
    retired,
    nloads,
    nstores,
):
    cm, cv = cspec

    def op(
        R,
        st,
        cm=cm,
        cv=cv,
        pc=pc,
        tpc=then_pc,
        ti=then_index,
        tc=then_copies,
        ei=else_index,
        ec=else_copies,
        k=pending,
        rt=retired,
        nl=nloads,
        ns=nstores,
    ):
        st.cycle += k
        st.retired += rt
        if nl:
            st.loads += nl
        if ns:
            st.stores += ns
        if R[cv] if cm else cv:
            st.taken += 1
            st.lbr_push((pc, tpc, st.cycle))
            if tc is not None:
                tc(R)
            st.next = ti
        else:
            if ec is not None:
                ec(R)
            st.next = ei

    return op


def _ret_op(aspec, pending, retired, nloads, nstores):
    am, av = aspec

    def op(R, st, am=am, av=av, k=pending, rt=retired, nl=nloads, ns=nstores):
        st.cycle += k
        st.retired += rt
        if nl:
            st.loads += nl
        if ns:
            st.stores += ns
        counters = st.counters
        counters.cycles = st.cycle
        counters.instructions += st.retired
        counters.loads += st.loads
        counters.stores += st.stores
        counters.taken_branches += st.taken
        st.value = R[av] if am else av
        st.next = _RETURNED

    return op


# ----------------------------------------------------------------------
# The per-function block compiler.
# ----------------------------------------------------------------------
class _BlockCompiler:
    def __init__(self, function: Function, config: MachineConfig) -> None:
        self.function = function
        self.config = config
        # Register file layout: parameters take slots 0..n-1 (so the
        # runner can fill them positionally), then every dst in program
        # order — identical to the translator's R-numbering.
        self.slots: dict[str, int] = {}
        for param in function.params:
            self.slots[param] = len(self.slots)
        for instruction in function.instructions():
            if instruction.dst is not None and instruction.dst not in self.slots:
                self.slots[instruction.dst] = len(self.slots)
        self.block_index = {
            block.name: index for index, block in enumerate(function.blocks)
        }
        self.start_pc = {
            block.name: block.start_pc for block in function.blocks
        }

    # ------------------------------------------------------------------
    def spec(self, operand):
        """Operand -> (is_register, slot_or_constant)."""
        if type(operand) is int:
            return (False, operand)
        return (True, self.slots[operand])

    def edge(self, target_name: str, source_name: str) -> Optional[Callable]:
        """PHI parallel-copy closure for the edge source -> target."""
        target = self.function.block(target_name)
        pairs = []
        for phi in target.phis():
            incoming = dict(phi.incomings)
            if source_name not in incoming:
                raise IRError(
                    f"phi {phi.dst} in {target_name} lacks incoming "
                    f"from {source_name}"
                )
            is_reg, src = self.spec(incoming[source_name])
            pairs.append((self.slots[phi.dst], is_reg, src))
        return _edge_copies(pairs)

    # ------------------------------------------------------------------
    def compile_block(self, block) -> tuple:
        cfg = self.config
        alu = cfg.alu_cost
        ops: list = []
        pending = 0  # folded cycle cost awaiting the next observer
        retired = 0
        nloads = 0
        nstores = 0

        for inst in block.non_phi_instructions():
            op = inst.op
            if op in _BINOP_FACTORIES:
                (am, a), (bm, b) = self.spec(inst.args[0]), self.spec(inst.args[1])
                factory = _BINOP_FACTORIES[op][(am, bm)]
                ops.append(factory(self.slots[inst.dst], a, b))
                pending += alu
                retired += 1
            elif op is Opcode.GEP:
                base, index, scale = inst.args
                ops.append(
                    _gep_op(
                        self.slots[inst.dst],
                        self.spec(base),
                        self.spec(index),
                        scale,
                    )
                )
                pending += alu
                retired += 1
            elif op is Opcode.CONST:
                ops.append(_const_op(self.slots[inst.dst], inst.args[0]))
                pending += alu
                retired += 1
            elif op is Opcode.MOV:
                ops.append(_mov_op(self.slots[inst.dst], self.spec(inst.args[0])))
                pending += alu
                retired += 1
            elif op is Opcode.SELECT:
                ops.append(
                    _select_op(
                        self.slots[inst.dst],
                        self.spec(inst.args[0]),
                        self.spec(inst.args[1]),
                        self.spec(inst.args[2]),
                    )
                )
                pending += alu
                retired += 1
            elif op is Opcode.LOAD:
                ops.append(
                    _load_op(
                        self.slots[inst.dst],
                        self.spec(inst.args[0]),
                        inst.pc,
                        pending,
                    )
                )
                pending = 0
                retired += 1
                nloads += 1
            elif op is Opcode.STORE:
                ops.append(
                    _store_op(
                        self.spec(inst.args[0]),
                        self.spec(inst.args[1]),
                        inst.pc,
                        pending,
                    )
                )
                pending = 0
                retired += 1
                nstores += 1
            elif op is Opcode.PREFETCH:
                ops.append(
                    _prefetch_op(self.spec(inst.args[0]), inst.pc, pending)
                )
                pending = cfg.prefetch_cost
                retired += 1
            elif op is Opcode.WORK:
                amount = inst.args[0]
                if type(amount) is int:
                    pending += amount * cfg.work_cpi
                    retired += amount
                else:
                    ops.append(
                        _work_op(self.slots[amount], pending, cfg.work_cpi)
                    )
                    pending = 0
            elif op is Opcode.CALL:
                pending += cfg.branch_cost
                retired += 1
                argspec = tuple(self.spec(a) for a in inst.args)
                ops.append(
                    _call_op(
                        self.slots[inst.dst],
                        inst.targets[0],
                        argspec,
                        inst.pc,
                        pending,
                    )
                )
                pending = 0
            elif op is Opcode.JMP:
                pending += cfg.branch_cost
                retired += 1
                target = inst.targets[0]
                ops.append(
                    _jmp_op(
                        inst.pc,
                        self.start_pc[target],
                        self.block_index[target],
                        self.edge(target, block.name),
                        pending,
                        retired,
                        nloads,
                        nstores,
                    )
                )
                pending = retired = nloads = nstores = 0
            elif op is Opcode.BR:
                pending += cfg.branch_cost
                retired += 1
                then_target, else_target = inst.targets
                ops.append(
                    _br_op(
                        self.spec(inst.args[0]),
                        inst.pc,
                        self.start_pc[then_target],
                        self.block_index[then_target],
                        self.edge(then_target, block.name),
                        self.block_index[else_target],
                        self.edge(else_target, block.name),
                        pending,
                        retired,
                        nloads,
                        nstores,
                    )
                )
                pending = retired = nloads = nstores = 0
            elif op is Opcode.RET:
                pending += cfg.branch_cost
                retired += 1
                aspec = self.spec(inst.args[0]) if inst.args else (False, 0)
                ops.append(_ret_op(aspec, pending, retired, nloads, nstores))
                pending = retired = nloads = nstores = 0
            else:  # pragma: no cover - exhaustive dispatch
                raise IRError(f"unhandled opcode {op!r}")
        return tuple(ops)


class BlockCompiledFunction:
    """An IR function compiled to per-block closure chains."""

    def __init__(
        self,
        function: Function,
        blocks: tuple,
        block_names: tuple,
        entry_index: int,
        register_count: int,
        slots: Optional[dict] = None,
        block_index: Optional[dict] = None,
        block_start_pc: Optional[dict] = None,
    ) -> None:
        self.function = function
        self._blocks = blocks
        self._block_names = block_names
        self._entry = entry_index
        self._register_count = register_count
        # Compile-form metadata consumed by the turbo tier
        # (repro.machine.superblock): the register-file layout and the
        # block-name -> dispatch-index / start-pc maps.
        self.slots = slots if slots is not None else {}
        self.block_index = (
            block_index
            if block_index is not None
            else {name: i for i, name in enumerate(block_names)}
        )
        self.block_start_pc = block_start_pc if block_start_pc is not None else {}

    def stats(self) -> dict:
        """Compile-shape summary (for tests and debugging)."""
        return {
            "blocks": len(self._blocks),
            "ops": sum(len(ops) for ops in self._blocks),
            "registers": self._register_count,
        }

    def __call__(self, ctx: ExecutionContext, args: Sequence[int] = ()) -> int:
        function = self.function
        if len(args) != len(function.params):
            raise IRError(
                f"{function.name} expects {len(function.params)} args, "
                f"got {len(args)}"
            )
        config = ctx.config
        counters = ctx.counters
        mem = ctx.mem
        space = ctx.space
        sampler = ctx.sampler

        st = _Frame()
        st.counters = counters
        st.mem_load = mem.load_port()
        st.mem_store = mem.store_port()
        st.mem_prefetch = mem.prefetch_port()
        st.sp_load = space.load
        st.sp_store = space.store
        st.lbr_push = ctx.lbr.push
        st.invoke = ctx.invoke
        st.sampler = sampler
        if sampler is not None:
            st.next_sample = sampler.next_at
            st.take = sampler.take
            st.pebs_threshold = config.effective_pebs_threshold()
            st.record_load = sampler.record_load
        else:
            st.next_sample = NEVER
            st.take = None
            st.pebs_threshold = NEVER
            st.record_load = None
        max_instructions = config.max_instructions
        st.cycle = int(counters.cycles)
        st.retired = 0
        st.loads = 0
        st.stores = 0
        st.taken = 0
        st.value = 0

        R = [0] * self._register_count
        for slot, value in enumerate(args):  # params occupy slots 0..n-1
            R[slot] = int(value)

        blocks = self._blocks
        bi = self._entry
        while True:
            if st.cycle >= st.next_sample:
                st.next_sample = st.take(st.cycle)
            if st.retired > max_instructions:
                raise ExecutionLimitExceeded(
                    f"{function.name}: exceeded {max_instructions} instructions"
                )
            st.next = _FELL_THROUGH
            for op in blocks[bi]:
                op(R, st)
            nxt = st.next
            if nxt < 0:
                if nxt == _RETURNED:
                    return st.value
                raise IRError(
                    f"block {self._block_names[bi]} fell through "
                    f"without terminator"
                )
            bi = nxt


def compile_blocks(
    function: Function, config: Optional[MachineConfig] = None
) -> BlockCompiledFunction:
    """Compile one finalized IR function into closure-chain form."""
    for block in function.blocks:
        if block.instructions and block.instructions[0].pc < 0:
            raise IRError(
                f"{function.name}: module must be finalized before "
                f"block compilation"
            )
    compiler = _BlockCompiler(function, config or MachineConfig())
    blocks = tuple(
        compiler.compile_block(block) for block in function.blocks
    )
    return BlockCompiledFunction(
        function,
        blocks,
        tuple(block.name for block in function.blocks),
        compiler.block_index[function.entry.name],
        len(compiler.slots),
        slots=compiler.slots,
        block_index=compiler.block_index,
        block_start_pc=compiler.start_pc,
    )
