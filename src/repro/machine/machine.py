"""The Machine facade: binds a finalized module + address space to the
memory hierarchy, PMU, LBR, and an execution engine.

Typical use::

    machine = Machine(module, space)
    result = machine.run("main")
    print(result.perf.ipc)

For profiling runs (the paper's ``perf record`` step)::

    machine = Machine(module, space)
    machine.enable_profiling()
    machine.run("main")
    samples = machine.sampler.samples
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.ir.nodes import IRError, Module
from repro.machine import codecache
from repro.machine.blockengine import compile_blocks
from repro.machine.config import (
    ENGINE_ALIASES,
    ENGINES,
    MachineConfig,
    normalize_engine,
)
from repro.machine.context import ExecutionContext
from repro.machine.interpreter import run_function
from repro.machine.lbr import LastBranchRecord, NullLBR
from repro.machine.pmu import Counters, PerfStat
from repro.machine.sampler import ProfileSampler
from repro.machine.superblock import compile_turbo
from repro.machine.translator import compile_function
from repro.mem.address import AddressSpace
from repro.mem.hierarchy import MemorySystem


@dataclass
class RunResult:
    """Outcome of one Machine.run: return value + the run's counter delta."""

    value: int
    counters: Counters

    @property
    def perf(self) -> PerfStat:
        return PerfStat(self.counters)

    @property
    def cycles(self) -> float:
        return self.counters.cycles


class Machine:
    """One simulated process: module + data + microarchitectural state."""

    def __init__(
        self,
        module: Module,
        space: AddressSpace,
        config: Optional[MachineConfig] = None,
        engine: Optional[str] = None,
    ) -> None:
        if not module.finalized:
            module.finalize()
        self.module = module
        self.space = space
        self.config = config or MachineConfig()
        if engine is None:
            engine = self.config.engine
        elif engine in ENGINE_ALIASES:
            warnings.warn(
                f"engine {engine!r} is a deprecated alias; "
                f"use {ENGINE_ALIASES[engine]!r}",
                DeprecationWarning,
                stacklevel=2,
            )
        self.engine = normalize_engine(engine)
        self.counters = Counters()
        self.mem = MemorySystem(self.config.memory, space, self.counters)
        self.lbr: LastBranchRecord | NullLBR = NullLBR()
        self.sampler: Optional[ProfileSampler] = None
        self.trace = None
        #: Compiled-form cache, keyed by (engine, function name) so one
        #: machine can serve several engines (e.g. translated_source()
        #: on a machine running the fast engine).
        self._compiled: dict[tuple[str, str], object] = {}
        #: Wall seconds spent compiling (the compile half of the
        #: compile-vs-execute split telemetry reports per engine.run).
        self._compile_seconds = 0.0
        #: Persistent AOT code cache (None unless config.code_cache is
        #: set); load-or-compile for the pure-codegen engines.
        self._code_cache = codecache.resolve(self.config.code_cache)

    # ------------------------------------------------------------------
    def enable_profiling(
        self, period: Optional[int] = None, first_at: Optional[int] = None
    ) -> ProfileSampler:
        """Turn on the LBR + PEBS sampling hardware for subsequent runs."""
        lbr = LastBranchRecord(self.config.lbr_entries)
        self.sampler = ProfileSampler(
            lbr,
            period or self.config.lbr_sample_period,
            first_at=first_at,
        )
        if self.trace is not None:
            from repro.obs.trace import BranchTap

            self.lbr = BranchTap(lbr, self.trace)
        else:
            self.lbr = lbr
        return self.sampler

    def disable_profiling(self) -> None:
        self.lbr = NullLBR()
        self.sampler = None

    # ------------------------------------------------------------------
    def enable_tracing(self, capacity: Optional[int] = None):
        """Turn on prefetch-lifecycle tracing for subsequent runs.

        Builds the injection-site tables from the (pass-stamped) module,
        attaches a :class:`~repro.obs.trace.PrefetchTrace` to the memory
        system, and taps the LBR stream so the timeline can reconstruct
        loop iterations.  Returns the trace; roll it up with
        :func:`repro.obs.sites.site_reports` or export it with
        :func:`repro.obs.timeline.chrome_trace`.

        Tracing-off runs pay near-zero cost (one predictable branch per
        L1-missing event); traced runs pay for the event stream.
        """
        from repro.obs.sites import site_table
        from repro.obs.trace import DEFAULT_CAPACITY, BranchTap, PrefetchTrace

        prefetch_sites, load_sites = site_table(self.module)
        trace = PrefetchTrace(
            capacity=capacity if capacity is not None else DEFAULT_CAPACITY,
            sites=prefetch_sites,
            site_loads=load_sites,
        )
        self.trace = trace
        self.mem.attach_trace(trace)
        if not isinstance(self.lbr, BranchTap):
            self.lbr = BranchTap(self.lbr, trace)
        else:
            self.lbr.trace = trace
        return trace

    def disable_tracing(self) -> None:
        from repro.obs.trace import BranchTap

        self.mem.detach_trace()
        if isinstance(self.lbr, BranchTap):
            self.lbr = self.lbr.inner
        self.trace = None

    # ------------------------------------------------------------------
    def _context(self) -> ExecutionContext:
        return ExecutionContext(
            space=self.space,
            mem=self.mem,
            counters=self.counters,
            lbr=self.lbr,
            config=self.config,
            sampler=self.sampler,
            invoke=self._invoke,
            trace=self.trace,
        )

    def _compile(self, name: str, engine: Optional[str] = None):
        """Fetch (or build) the compiled form of ``name`` for ``engine``."""
        engine = engine or self.engine
        key = (engine, name)
        compiled = self._compiled.get(key)
        if compiled is None:
            started = time.perf_counter()
            function = self.module.function(name)
            cache = (
                self._code_cache
                if engine in codecache.CACHEABLE_ENGINES
                else None
            )
            if cache is not None:
                compiled = cache.load_or_compile(function, self.config, engine)
            elif engine == "turbo":
                compiled = compile_turbo(function, self.config)
            elif engine == "fast":
                compiled = compile_blocks(function, self.config)
            else:
                compiled = compile_function(function, self.config)
            self._compiled[key] = compiled
            self._compile_seconds += time.perf_counter() - started
        return compiled

    def _invoke(self, callee: str, args: Sequence[int], from_pc: int) -> int:
        """CALL trampoline: run ``callee`` on this machine's engine with
        the shared clock; records the call's taken branch in the LBR."""
        if callee not in self.module.functions:
            raise IRError(f"call to unknown function {callee!r}")
        function = self.module.function(callee)
        entry_pc = function.entry.start_pc
        self.lbr.push((from_pc, entry_pc, int(self.counters.cycles)))
        self.counters.taken_branches += 1
        if self.engine == "reference":
            return run_function(function, self._context(), args)
        return self._compile(callee)(self._context(), args)

    def run(
        self,
        function: str = "main",
        args: Sequence[int] = (),
        flush_caches: bool = False,
    ) -> RunResult:
        """Execute ``function`` and return its value plus the counter delta."""
        if function not in self.module.functions:
            raise IRError(f"module has no function {function!r}")
        if flush_caches:
            self.mem.flush()
        before = self.counters.copy()
        if self.engine == "reference":
            value = run_function(
                self.module.function(function), self._context(), args
            )
        else:
            value = self._compile(function)(self._context(), args)
        return RunResult(value=value, counters=self.counters - before)

    def translated_source(self, function: str) -> str:
        """Source of the translating engine's code for ``function``
        (debug aid; compiles on demand whatever engine is active)."""
        return self._compile(function, engine="translate").source

    def engine_run_stats(self) -> dict:
        """Engine-phase profiling rollup for this machine's lifetime:
        the compile-vs-execute wall split plus, on the turbo tier, the
        superblock bulk-stepping/guard-bail tallies.  Read by the
        telemetry layer at ``engine.run`` span close; pure observation
        (compiled-function attributes, never PMU counters)."""
        stats: dict = {
            "compiled_functions": len(self._compiled),
            "compile_seconds": round(self._compile_seconds, 6),
        }
        bulk_calls = bulk_iters = declines = cleared = 0
        turbo = False
        for compiled in self._compiled.values():
            if hasattr(compiled, "bulk_calls"):
                turbo = True
                bulk_calls += compiled.bulk_calls
                bulk_iters += compiled.bulk_iters
                declines += compiled.guard_declines
                cleared += compiled.adaptive_cleared
        if turbo:
            stats["bulk_calls"] = bulk_calls
            stats["bulk_iters"] = bulk_iters
            stats["guard_declines"] = declines
            stats["adaptive_cleared"] = cleared
        return stats
