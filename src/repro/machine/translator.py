"""Translating execution engine: compiles each IR function to one Python
function (QEMU/Embra-style binary translation, one translation unit per
function).

Why: the reference interpreter dispatches per instruction; the translator
maps virtual registers to Python locals, folds runs of constant-cost ALU
instructions into single ``cycle += k`` statements, and resolves PHIs as
edge copies.  It is ~10-30x faster and — because all costs are integers
accumulated in program order — produces *bit-identical* timing, counters,
and LBR contents to the interpreter (asserted by differential tests).
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional, Sequence

from repro.analysis.loops import find_loops
from repro.ir.nodes import Function, IRError, Instruction, Operand
from repro.ir.opcodes import BINOP_EXPR, Opcode
from repro.machine.config import MachineConfig
from repro.machine.context import ExecutionContext
from repro.machine.interpreter import ExecutionLimitExceeded
from repro.machine.sampler import NEVER

_counter = itertools.count()


class CompiledFunction:
    """A translated IR function ready to run against a context."""

    def __init__(self, function: Function, source: str, fn: Callable) -> None:
        self.function = function
        self.source = source
        self._fn = fn

    def __call__(self, ctx: ExecutionContext, args: Sequence[int] = ()) -> int:
        if len(args) != len(self.function.params):
            raise IRError(
                f"{self.function.name} expects "
                f"{len(self.function.params)} args, got {len(args)}"
            )
        return self._fn(ctx, tuple(int(a) for a in args))


class _Codegen:
    def __init__(self, function: Function, config: MachineConfig) -> None:
        self.function = function
        self.config = config
        self.lines: list[str] = []
        self.indent = 0
        self.reg_names: dict[str, str] = {}
        for index, param in enumerate(function.params):
            self.reg_names[param] = f"R{index}"
        for instruction in function.instructions():
            if instruction.dst is not None and instruction.dst not in self.reg_names:
                self.reg_names[instruction.dst] = f"R{len(self.reg_names)}"
        # Dispatch order: deepest loops first so hot blocks match early.
        loops = find_loops(function)
        depth = {block.name: 0 for block in function.blocks}
        for loop in loops:
            for name in loop.body:
                depth[name] = max(depth[name], loop.depth)
        ordered = sorted(
            function.blocks,
            key=lambda block: (-depth[block.name], function.blocks.index(block)),
        )
        self.block_index = {block.name: i for i, block in enumerate(ordered)}
        self.ordered_blocks = ordered
        self.start_pc = {block.name: block.start_pc for block in function.blocks}

    # ------------------------------------------------------------------
    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def operand(self, value: Operand) -> str:
        if type(value) is int:
            return repr(value)
        return self.reg_names[value]

    # ------------------------------------------------------------------
    def generate(self) -> str:
        function = self.function
        self.emit("def __translated(ctx, args):")
        self.indent += 1
        self.emit("mem = ctx.mem")
        self.emit("mem_load = mem.load_port()")
        self.emit("mem_store = mem.store_port()")
        self.emit("mem_prefetch = mem.prefetch_port()")
        self.emit("sp = ctx.space")
        self.emit("sp_load = sp.load")
        self.emit("sp_store = sp.store")
        self.emit("counters = ctx.counters")
        self.emit("lbr_push = ctx.lbr.push")
        self.emit("sampler = ctx.sampler")
        self.emit("if sampler is not None:")
        self.emit("    next_sample = sampler.next_at")
        self.emit("    pebs_threshold = ctx.config.effective_pebs_threshold()")
        self.emit("    sampler_take = sampler.take")
        self.emit("    record_load = sampler.record_load")
        self.emit("else:")
        self.emit("    next_sample = NEVER")
        self.emit("    pebs_threshold = NEVER")
        self.emit("    sampler_take = None")
        self.emit("    record_load = None")
        self.emit("max_instructions = ctx.config.max_instructions")
        self.emit("cycle = int(counters.cycles)")
        self.emit("retired = 0")
        self.emit("loads = 0")
        self.emit("stores = 0")
        self.emit("taken = 0")
        for index, param in enumerate(function.params):
            self.emit(f"{self.reg_names[param]} = args[{index}]")
        self.emit(f"bi = {self.block_index[function.entry.name]}")
        self.emit("while True:")
        self.indent += 1
        for position, block in enumerate(self.ordered_blocks):
            keyword = "if" if position == 0 else "elif"
            self.emit(f"{keyword} bi == {self.block_index[block.name]}:")
            self.indent += 1
            self._emit_block(block)
            self.indent -= 1
        self.emit("else:")
        self.emit("    raise RuntimeError('bad block index %r' % bi)")
        self.indent -= 2
        return "\n".join(self.lines)

    # ------------------------------------------------------------------
    def _emit_block(self, block) -> None:
        cfg = self.config
        self.emit("if cycle >= next_sample:")
        self.emit("    next_sample = sampler_take(cycle)")
        self.emit("if retired > max_instructions:")
        self.emit(
            "    raise ExecutionLimitExceeded("
            f"'{self.function.name}: instruction budget exceeded')"
        )

        pending = 0  # folded cycle cost not yet emitted
        retired_const = 0
        retired_dynamic: list[str] = []
        n_loads = 0
        n_stores = 0

        def flush() -> None:
            nonlocal pending
            if pending:
                self.emit(f"cycle += {pending}")
                pending = 0

        instructions = block.non_phi_instructions()
        for inst in instructions:
            op = inst.op
            if op in BINOP_EXPR:
                expr = BINOP_EXPR[op].format(
                    a=self.operand(inst.args[0]), b=self.operand(inst.args[1])
                )
                self.emit(f"{self.reg_names[inst.dst]} = {expr}")
                pending += cfg.alu_cost
                retired_const += 1
            elif op is Opcode.GEP:
                base, index, scale = inst.args
                if type(index) is int:
                    offset = index * scale
                    expr = f"{self.operand(base)} + {offset}"
                elif scale == 1:
                    expr = f"{self.operand(base)} + {self.operand(index)}"
                else:
                    expr = f"{self.operand(base)} + {self.operand(index)}*{scale}"
                self.emit(f"{self.reg_names[inst.dst]} = {expr}")
                pending += cfg.alu_cost
                retired_const += 1
            elif op is Opcode.CONST:
                self.emit(f"{self.reg_names[inst.dst]} = {inst.args[0]!r}")
                pending += cfg.alu_cost
                retired_const += 1
            elif op is Opcode.MOV:
                self.emit(
                    f"{self.reg_names[inst.dst]} = {self.operand(inst.args[0])}"
                )
                pending += cfg.alu_cost
                retired_const += 1
            elif op is Opcode.SELECT:
                cond, a, b = (self.operand(v) for v in inst.args)
                self.emit(
                    f"{self.reg_names[inst.dst]} = ({a}) if ({cond}) else ({b})"
                )
                pending += cfg.alu_cost
                retired_const += 1
            elif op is Opcode.LOAD:
                flush()
                self.emit(f"_a = {self.operand(inst.args[0])}")
                self.emit(f"_l = mem_load(_a, cycle, {inst.pc})")
                self.emit("cycle += _l")
                self.emit("if _l >= pebs_threshold:")
                self.emit(f"    record_load({inst.pc}, _l)")
                self.emit(f"{self.reg_names[inst.dst]} = sp_load(_a)")
                retired_const += 1
                n_loads += 1
            elif op is Opcode.STORE:
                flush()
                self.emit(f"_a = {self.operand(inst.args[0])}")
                self.emit(f"cycle += mem_store(_a, cycle, {inst.pc})")
                self.emit(f"sp_store(_a, {self.operand(inst.args[1])})")
                retired_const += 1
                n_stores += 1
            elif op is Opcode.PREFETCH:
                flush()
                self.emit(
                    f"mem_prefetch({self.operand(inst.args[0])}, cycle, {inst.pc})"
                )
                pending += cfg.prefetch_cost
                retired_const += 1
            elif op is Opcode.WORK:
                amount = inst.args[0]
                if type(amount) is int:
                    pending += amount * cfg.work_cpi
                    retired_const += amount
                else:
                    flush()
                    name = self.operand(amount)
                    self.emit(f"cycle += {name} * {cfg.work_cpi}")
                    retired_dynamic.append(name)
            elif op is Opcode.CALL:
                pending += cfg.branch_cost
                retired_const += 1
                flush()
                call_args = ", ".join(self.operand(a) for a in inst.args)
                trailing_comma = "," if len(inst.args) == 1 else ""
                self.emit("counters.cycles = cycle")
                self.emit(
                    f"{self.reg_names[inst.dst]} = ctx.invoke("
                    f"{inst.targets[0]!r}, ({call_args}{trailing_comma}), "
                    f"{inst.pc})"
                )
                self.emit("cycle = int(counters.cycles)")
                self.emit("if sampler is not None:")
                self.emit("    next_sample = sampler.next_at")
            elif op in (Opcode.JMP, Opcode.BR, Opcode.RET):
                pending += cfg.branch_cost
                retired_const += 1
                flush()
                if retired_const:
                    self.emit(f"retired += {retired_const}")
                for name in retired_dynamic:
                    self.emit(f"retired += {name}")
                if n_loads:
                    self.emit(f"loads += {n_loads}")
                if n_stores:
                    self.emit(f"stores += {n_stores}")
                self._emit_terminator(block, inst)
            else:  # pragma: no cover - exhaustive dispatch
                raise IRError(f"unhandled opcode {op!r}")

    # ------------------------------------------------------------------
    def _edge_copies(self, target_name: str, source_name: str) -> list[str]:
        target = self.function.block(target_name)
        phis = target.phis()
        if not phis:
            return []
        values = []
        for phi in phis:
            incoming = dict(phi.incomings)
            if source_name not in incoming:
                raise IRError(
                    f"phi {phi.dst} in {target_name} lacks incoming "
                    f"from {source_name}"
                )
            values.append((self.reg_names[phi.dst], incoming[source_name]))
        if len(values) == 1:
            dst, value = values[0]
            return [f"{dst} = {self.operand(value)}"]
        lines = []
        for index, (_, value) in enumerate(values):
            lines.append(f"_p{index} = {self.operand(value)}")
        for index, (dst, _) in enumerate(values):
            lines.append(f"{dst} = _p{index}")
        return lines

    def _emit_terminator(self, block, inst: Instruction) -> None:
        if inst.op is Opcode.RET:
            self.emit("counters.cycles = cycle")
            self.emit("counters.instructions += retired")
            self.emit("counters.loads += loads")
            self.emit("counters.stores += stores")
            self.emit("counters.taken_branches += taken")
            self.emit(f"return {self.operand(inst.args[0])}")
            return
        if inst.op is Opcode.JMP:
            target = inst.targets[0]
            self.emit("taken += 1")
            self.emit(f"lbr_push(({inst.pc}, {self.start_pc[target]}, cycle))")
            for line in self._edge_copies(target, block.name):
                self.emit(line)
            self.emit(f"bi = {self.block_index[target]}")
            self.emit("continue")
            return
        # Conditional branch: targets[0] is the taken direction.
        then_target, else_target = inst.targets
        self.emit(f"if {self.operand(inst.args[0])}:")
        self.indent += 1
        self.emit("taken += 1")
        self.emit(f"lbr_push(({inst.pc}, {self.start_pc[then_target]}, cycle))")
        for line in self._edge_copies(then_target, block.name):
            self.emit(line)
        self.emit(f"bi = {self.block_index[then_target]}")
        self.indent -= 1
        self.emit("else:")
        self.indent += 1
        for line in self._edge_copies(else_target, block.name):
            self.emit(line)
        self.emit(f"bi = {self.block_index[else_target]}")
        self.indent -= 1
        self.emit("continue")


def compile_function(
    function: Function, config: Optional[MachineConfig] = None
) -> CompiledFunction:
    """Translate one finalized IR function into a Python callable."""
    for block in function.blocks:
        if block.instructions and block.instructions[0].pc < 0:
            raise IRError(
                f"{function.name}: module must be finalized before translation"
            )
    codegen = _Codegen(function, config or MachineConfig())
    source = codegen.generate()
    namespace = {
        "NEVER": NEVER,
        "ExecutionLimitExceeded": ExecutionLimitExceeded,
    }
    filename = f"<translated:{function.name}:{next(_counter)}>"
    exec(compile(source, filename, "exec"), namespace)  # noqa: S102
    return CompiledFunction(function, source, namespace["__translated"])
