"""PMU counters, named after the Intel events the paper measures with
``perf stat`` (§2.3, §4.4), plus simulator-side extras.

A :class:`Counters` instance is owned by the machine and mutated by the
memory system and the execution engine.  :class:`PerfStat` formats the
derived metrics the paper reports (IPC, prefetch accuracy, late-prefetch
ratio, MPKI, memory-boundedness).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class Counters:
    """Raw event counts for one run."""

    cycles: float = 0.0
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    taken_branches: int = 0

    # Per-level demand hit/miss.
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    llc_hits: int = 0
    llc_misses: int = 0

    # Offcore (to-memory) read requests, paper's accuracy numerator and
    # denominator: offcore_requests.{all,demand}_data_rd.
    offcore_all_data_rd: int = 0
    offcore_demand_data_rd: int = 0

    # Software prefetch bookkeeping.
    sw_prefetch_issued: int = 0
    sw_prefetch_dropped_mshr: int = 0
    sw_prefetch_dropped_unmapped: int = 0
    sw_prefetch_redundant: int = 0  # line already cached or in flight
    sw_prefetch_useful: int = 0  # demand load consumed a prefetched line
    #: Demand load hit an in-flight software prefetch in the fill buffer
    #: (Intel LOAD_HIT_PRE.SW_PF) — the paper's *late prefetch* signal.
    load_hit_pre_sw_pf: int = 0
    sw_prefetch_early_evicted: int = 0  # evicted from LLC before any use

    # Hardware prefetcher bookkeeping.
    hw_prefetch_issued: int = 0
    hw_prefetch_useful: int = 0

    # Stall-cycle attribution for the memory component (Fig 5).
    stall_cycles_l2: float = 0.0
    stall_cycles_llc: float = 0.0
    stall_cycles_dram: float = 0.0

    def copy(self) -> "Counters":
        clone = Counters()
        for f in fields(self):
            setattr(clone, f.name, getattr(self, f.name))
        return clone

    def __sub__(self, other: "Counters") -> "Counters":
        result = Counters()
        for f in fields(self):
            setattr(result, f.name, getattr(self, f.name) - getattr(other, f.name))
        return result

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class PerfStat:
    """Derived metrics over a :class:`Counters` snapshot."""

    counters: Counters = field(default_factory=Counters)

    @property
    def ipc(self) -> float:
        cycles = self.counters.cycles
        return self.counters.instructions / cycles if cycles else 0.0

    @property
    def sw_prefetch_memory_reads(self) -> int:
        """Software prefetches that actually reached memory (issued minus
        redundant/dropped)."""
        c = self.counters
        return (
            c.sw_prefetch_issued
            - c.sw_prefetch_redundant
            - c.sw_prefetch_dropped_mshr
            - c.sw_prefetch_dropped_unmapped
        )

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of offcore data reads attributable to software
        prefetching: (all_data_rd - demand_data_rd) / all_data_rd in the
        paper's Table 1, computed here over the software-prefetch-visible
        traffic so the hardware prefetchers (always on, as on the paper's
        machine with its 0% 'None' row) do not pollute the metric."""
        sw = self.sw_prefetch_memory_reads
        total = sw + self.counters.offcore_demand_data_rd
        if total <= 0:
            return 0.0
        return sw / total

    @property
    def late_prefetch_ratio(self) -> float:
        """LOAD_HIT_PRE.SW_PF normalized by issued software prefetches."""
        issued = self.counters.sw_prefetch_issued
        if not issued:
            return 0.0
        return self.counters.load_hit_pre_sw_pf / issued

    @property
    def prefetch_timeliness(self) -> float:
        """Fraction of consumed software prefetches whose line arrived
        *before* the demand access (useful minus LOAD_HIT_PRE over
        useful) — the machine-wide Eq-1 success metric; the per-site
        breakdown lives in repro.obs."""
        useful = self.counters.sw_prefetch_useful
        if not useful:
            return 0.0
        return (useful - self.counters.load_hit_pre_sw_pf) / useful

    @property
    def llc_mpki(self) -> float:
        """Demand reads reaching memory per kilo-instruction (paper Fig 7
        measures offcore_requests.demand_data_rd; note a demand load that
        hits an in-flight prefetch still counts as a miss, §4.4)."""
        instructions = self.counters.instructions
        if not instructions:
            return 0.0
        misses = (
            self.counters.offcore_demand_data_rd
            + self.counters.load_hit_pre_sw_pf
        )
        return 1000.0 * misses / instructions

    @property
    def memory_bound_fraction(self) -> float:
        """Fraction of cycles stalled on L3 + DRAM (Fig 5)."""
        cycles = self.counters.cycles
        if not cycles:
            return 0.0
        stalled = self.counters.stall_cycles_llc + self.counters.stall_cycles_dram
        return stalled / cycles

    def check_invariants(self) -> list[str]:
        """Cross-counter consistency checks; returns violation messages.

        Used by integration and property tests: any non-empty result is
        a simulator bug, not a workload property.
        """
        c = self.counters
        problems = []
        if c.cycles < 0 or c.instructions < 0:
            problems.append("negative cycles/instructions")
        if c.l1_hits + c.l1_misses != c.loads:
            problems.append(
                f"l1 hits+misses ({c.l1_hits}+{c.l1_misses}) != loads ({c.loads})"
            )
        if c.l2_hits + c.l2_misses > c.l1_misses:
            problems.append("L2 accesses exceed L1 misses")
        if c.llc_hits + c.llc_misses > c.l2_misses:
            problems.append("LLC accesses exceed L2 misses")
        if c.offcore_demand_data_rd > c.llc_misses:
            problems.append("offcore demand reads exceed LLC misses")
        if c.offcore_all_data_rd < c.offcore_demand_data_rd:
            problems.append("all_data_rd < demand_data_rd")
        sw_accounted = (
            self.sw_prefetch_memory_reads
            + c.sw_prefetch_redundant
            + c.sw_prefetch_dropped_mshr
            + c.sw_prefetch_dropped_unmapped
        )
        if sw_accounted != c.sw_prefetch_issued:
            problems.append("software prefetch accounting does not add up")
        if c.load_hit_pre_sw_pf > c.sw_prefetch_useful:
            problems.append("late prefetches exceed useful prefetches")
        if (
            c.sw_prefetch_useful + c.sw_prefetch_early_evicted
            > self.sw_prefetch_memory_reads
        ):
            problems.append("prefetch outcomes exceed prefetch memory reads")
        stalls = c.stall_cycles_l2 + c.stall_cycles_llc + c.stall_cycles_dram
        if stalls > c.cycles:
            problems.append("memory stalls exceed total cycles")
        return problems

    def summary(self) -> dict[str, float]:
        return {
            "cycles": self.counters.cycles,
            "instructions": self.counters.instructions,
            "ipc": self.ipc,
            "prefetch_accuracy": self.prefetch_accuracy,
            "late_prefetch_ratio": self.late_prefetch_ratio,
            "prefetch_timeliness": self.prefetch_timeliness,
            "llc_mpki": self.llc_mpki,
            "memory_bound_fraction": self.memory_bound_fraction,
        }
