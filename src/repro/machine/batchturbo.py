"""Batched superblock tier: turbo-style loop fusion across sweep cells.

The per-block batch engine (:mod:`repro.machine.batch`) already shares
one front-end across N sweep cells, but it still pays, per loop
iteration, one closure call per op plus a dispatch round trip per
block — and every memory op's closure re-binds its per-cell state.
This tier fuses the same loop nests the sequential turbo tier fuses
(the analysis is shared, :mod:`repro.machine.fusion`) into one
generated function per nest that steps **all cells per iteration**:

* uniform registers live in Python locals; divergent registers stay in
  the per-cell overlays (``st.D``) and are touched in compact
  ``for _i in RNG`` loops;
* every memory site advances each cell's private L1/L2/LLC + MSHR
  timing state in the same loop body, with the L1-hit arm inlined
  exactly as the sequential turbo tier inlines it
  (:mod:`repro.mem.fastpath` views, pop/re-insert LRU refresh,
  prefetch-usefulness consumption) and misses delegating to the cell's
  demand port;
* per-iteration retired/load/store/taken counts fold into compile-time
  constants applied once per back edge — uniform across cells by
  construction (divergent WORK amounts reject the batch up front);
* constant cycle costs are *deferred*, not materialized per op: the
  compile-time pending constant rides in the codegen, and one runtime
  local ``_pc`` carries pending cycles across back edges, so the
  common iteration pays one integer add per memory site instead of a
  per-cell materialization loop per terminator.  Nothing observes a
  cell's clock between materialization points (batched runs never
  sample or trace), so deferral is invisible — the ``_now`` handed to
  every port call is bit-identical to the per-block engine's.

**Guards.**  Batched runs have exactly one observation point: the
instruction-budget check at block dispatch.  The generated function
hoists ``_gm = st.max_instructions - st.retired`` once (the budget is
run-constant) and guards ``_rt + bound_retired > _gm`` per back edge,
where ``bound_retired`` is the whole nest's worst-case per-iteration
retire count — the min-of-cells bound is the single shared bound, since
cost fields are verified uniform across cells at batch construction.
When the guard trips the stepper flushes and returns at an exact block
header; the entry guard declines with ``-1`` instead, and per-block
dispatch replays to the exact boundary — the budget raise fires at the
identical block the sequential engines fire it at.

**Vectorized tag checks.**  Past a cell-count threshold
(:func:`repro.mem.batch.vector_threshold`) each uniform-address memory
site first asks the :class:`repro.mem.batch.L1TagVector` lane for all
cells at once whether the line is its set's MRU — a guaranteed L1 hit
whose LRU refresh is a structural no-op — and only the cells that
cannot be answered vectorially fall back to the per-cell dict probe.
The lane is routing-only: hits found through it execute the same
inlined hit arm, and every port call marks the cell dirty so the
mirror is rebuilt from the structural views before it is trusted
again.  State is bit-identical with the lane on or off.
"""

from __future__ import annotations

import itertools
import re
from typing import Optional, Sequence

from repro.ir.nodes import IRError
from repro.ir.opcodes import BINOP_EXPR, Opcode
from repro.machine.batch import (
    _BatchBlockCompiler,
    _FunctionPlan,
    _aligned_phis,
    _aligned_rest,
    BatchCompiledFunction,
    _BatchFrame,
)
from repro.machine.blockengine import _FELL_THROUGH, _RETURNED
from repro.machine.config import MachineConfig
from repro.machine.fusion import (
    FusionUnit as _Unit,
    GuardedUnit as _Guarded,
    discover_units,
    flatten_unit as _flatten,
    unit_depth as _depth,
    unit_entry as _entry,
)
from repro.machine.interpreter import ExecutionLimitExceeded
from repro.machine.superblock import _ADAPT_MIN_ITERS, _ADAPT_WARMUP

_counter = itertools.count()

#: Temp identifiers in generated bodies (loop-local scratch plus the
#: shared ``_sN`` segment caches); used by the loop-merger peephole.
_TEMP_RE = re.compile(r"\b_[a-z][a-z0-9_]*\b")
_ASSIGN_RE = re.compile(r"^(_[a-z][a-z0-9_]*) = ")


def _loop_effects(body: list) -> tuple:
    """``(assigned, hazard)`` temp-name sets for one cell-loop body.

    ``assigned`` holds every simple-assignment target; ``hazard`` every
    temp read before it is (linearly) assigned, i.e. a name whose value
    at loop entry is observable.  Two adjacent loops may only be merged
    when neither body's assignments feed the other's entry-observable
    reads — otherwise a later iteration of the merged loop would see a
    temp left over from the *other* body's previous iteration instead
    of the value that was live when its own loop originally started.
    Subscripted state (``cy[_i]``, ``D[_i]``, ...) needs no tracking:
    it is cell-indexed, so per-cell mutation order is preserved by any
    interleaving of the bodies.
    """
    assigned = {"_i"}
    hazard: set = set()
    for line in body:
        text = line.lstrip(" ")
        match = _ASSIGN_RE.match(text)
        target = match.group(1) if match else None
        for token in _TEMP_RE.finditer(text):
            name = token.group(0)
            if name == target and token.start() == 0:
                continue
            if name not in assigned:
                hazard.add(name)
        if target is not None:
            assigned.add(target)
    return assigned, hazard


#: Read-only cell-indexed bindings worth aliasing to a loop-local when
#: a (merged) body touches them more than once.  ``D[_i]`` keeps its
#: codegen-conventional ``_d`` alias; the rest get ``_k*`` names no
#: emitter uses.  ``cy`` is handled separately — its entries are
#: rebound ints, so it needs a write-back, not just an alias.
_ALIAS_BASES = (
    ("D", "_d"),
    ("L1S", "_ks"),
    ("C", "_kc"),
    ("UN", "_ku"),
    ("LD", "_kl"),
    ("PF", "_kp"),
    ("SR", "_kr"),
)
_CY_RE = re.compile(r"\bcy\[_i\]")


def _localize_body(body: list, inner: int) -> list:
    """Hoist repeated cell-indexed accesses in one loop body to locals.

    Container bindings (``D[_i]``, ``L1S[_i]``, counters, port views)
    are stable objects — aliasing them is observationally identical,
    ports mutate *through* the same objects.  ``cy[_i]`` holds a plain
    int, so it is fully localized: read once at loop top, every access
    rewritten to the local, stored back once at loop bottom (nothing a
    body calls reads or writes ``st.cycles`` behind the generated
    code's back — ports take ``_now`` explicitly and return latency).
    """
    pad = " " * inner
    text = "\n".join(body)
    if len(_CY_RE.findall(text)) >= 3:
        body = [_CY_RE.sub("_yc", line) for line in body]
        body.insert(0, pad + "_yc = cy[_i]")
        body.append(pad + "cy[_i] = _yc")
        text = "\n".join(body)
    for base, alias in _ALIAS_BASES:
        pattern = re.compile(rf"\b{base}\[_i\]")
        if len(pattern.findall(text)) < 2:
            continue
        body = [pattern.sub(alias, line) for line in body]
        body = [
            line
            for line in body
            if line.lstrip(" ") != f"{alias} = {alias}"
        ]
        body.insert(0, f"{pad}{alias} = {base}[_i]")
        text = "\n".join(body)
    return body


def _merge_cell_loops(lines: list) -> list:
    """Peephole over a generated body: fuse adjacent ``for _i in RNG:``
    loops at the same indent with nothing between them into one loop,
    and drop duplicate top-level ``_d = D[_i]`` rebinds in the merged
    body.  Cuts the dominant per-uniform-instruction overhead of the
    batch superblock — loop setup and ``RNG`` iteration — without
    changing per-cell execution order (see :func:`_loop_effects` for
    the safety argument)."""
    out: list = []
    i = 0
    total = len(lines)
    while i < total:
        line = lines[i]
        text = line.lstrip(" ")
        if text != "for _i in RNG:":
            out.append(line)
            i += 1
            continue
        indent = len(line) - len(text)
        inner = indent + 4

        def body_end(start: int) -> int:
            j = start
            while j < total and len(lines[j]) - len(lines[j].lstrip(" ")) >= inner:
                j += 1
            return j

        end = body_end(i + 1)
        body = list(lines[i + 1 : end])
        assigned, hazard = _loop_effects(body)
        i = end
        while i < total and lines[i] == line:
            nxt_end = body_end(i + 1)
            nxt = lines[i + 1 : nxt_end]
            nxt_assigned, nxt_hazard = _loop_effects(nxt)
            if (assigned & nxt_hazard) or (nxt_assigned & hazard):
                break
            body.extend(nxt)
            assigned |= nxt_assigned
            hazard |= nxt_hazard
            i = nxt_end
        bind = " " * inner + "_d = D[_i]"
        if body.count(bind) > 1:
            seen = False
            deduped = []
            for entry in body:
                if entry == bind:
                    if seen:
                        continue
                    seen = True
                deduped.append(entry)
            body = deduped
        out.append(line)
        out.extend(_localize_body(body, inner))
    return out


class CellBindings:
    """Per-batch pre-resolved cell state the generated steppers bind.

    Built once per :class:`~repro.machine.batch.BatchMachine`; every
    generated batch superblock receives it as the ``cd`` argument and
    lazily binds only the views its body references.
    """

    __slots__ = (
        "n",
        "rng",
        "counters",
        "unused",
        "l1_sets",
        "l1_masks",
        "l1_lats",
        "mems",
        "sp_find",
        "lane",
    )

    def __init__(self, cells, space, lane=None) -> None:
        fronts = [cell.mem.front() for cell in cells]
        self.n = len(cells)
        self.rng = range(self.n)
        self.counters = [cell.counters for cell in cells]
        self.unused = [front._unused for front in fronts]
        self.l1_sets = [front._l1_sets for front in fronts]
        self.l1_masks = [front._l1_mask for front in fronts]
        self.l1_lats = [front._l1_lat for front in fronts]
        self.mems = [cell.mem for cell in cells]
        self.sp_find = space._find
        self.lane = lane


# ----------------------------------------------------------------------
# Codegen
# ----------------------------------------------------------------------
class _BatchSuperblockCodegen:
    """Generates the fused-nest stepper for one unit, all cells.

    Signature of the generated function: ``(R, st, cd, PT)`` — shared
    register file, batch frame, :class:`CellBindings`, and the
    per-cell constant tables (one tuple per divergent-immediate
    operand, indexed ``PT[k][_i]``).  Returns the dispatch index to
    resume at, or ``-1`` without touching any state when the entry
    guard finds the instruction budget too close to run one worst-case
    iteration.
    """

    def __init__(
        self,
        plan: _FunctionPlan,
        config: MachineConfig,
        compiler: _BatchBlockCompiler,
        unit: _Unit,
        cell_configs: Sequence[MachineConfig],
        vector: bool,
    ) -> None:
        self.plan = plan
        self.config = config
        self.slots = compiler.slots
        self.block_index = compiler.block_index
        self.divergent = plan.divergent
        self.function = plan.functions[0]
        self.unit = unit
        self.vector = vector
        self.l1_masks = [
            cfg.memory.l1.sets - 1 for cfg in cell_configs
        ]
        self.l1_lats = [
            int(cfg.memory.l1.latency) for cfg in cell_configs
        ]
        self.uniform_geometry = (
            all(m == self.l1_masks[0] for m in self.l1_masks)
            and all(l == self.l1_lats[0] for l in self.l1_lats)
        )
        # The cycle bound must hold for every cell, so take the
        # worst-case demand latency across cells (metadata only — the
        # batch tier's guards are retired-only).
        self.mem_lat = max(
            int(cfg.memory.llc.latency + cfg.memory.dram_latency)
            for cfg in cell_configs
        )
        self._totals: dict = {}
        nest = self._nest_totals(unit)
        self.nest_totals = nest
        self.bound_cycles = max(
            1, nest[4] + nest[1] * self.mem_lat + nest[2]
        )
        self.bound_retired = max(1, nest[0])
        self.has_ld = nest[1] > 0
        self.has_sr = nest[2] > 0
        self.has_tk = nest[3] > 0 or self._any_taken_exit(unit)
        self.preload, self.writeback = self._collect_slots()
        self._memory_sites = nest[1] + nest[2]
        self.ptables: list = []
        self._pt: dict = {}
        # Emission state.
        self.lines: list = []
        self.indent = 0
        self._site = 0
        self._carry = False
        self._pending = 0

    # -- static analysis ----------------------------------------------
    def _unit_totals(self, unit: _Unit) -> tuple:
        cached = self._totals.get(id(unit))
        if cached is None:
            cached = self._scan_totals(unit)
            self._totals[id(unit)] = cached
        return cached

    def _scan_totals(self, unit: _Unit) -> tuple:
        """One iteration's folded constants over the unit's own blocks.

        Scanning cell 0 is exact for every cell: alignment pins the
        opcode/shape at every position, and divergent WORK amounts are
        banned, so the retire/cost tallies are uniform.
        """
        cfg = self.config
        rt = nloads = nstores = tk = const_cycles = 0
        for name in unit.own_blocks:
            cont = unit.cont[name]
            for inst in self.function.block(name).non_phi_instructions():
                op = inst.op
                if op is Opcode.LOAD:
                    rt += 1
                    nloads += 1
                elif op is Opcode.STORE:
                    rt += 1
                    nstores += 1
                elif op is Opcode.PREFETCH:
                    rt += 1
                    const_cycles += cfg.prefetch_cost
                elif op is Opcode.WORK:
                    rt += inst.args[0]
                    const_cycles += inst.args[0] * cfg.work_cpi
                elif op in (Opcode.JMP, Opcode.BR):
                    rt += 1
                    const_cycles += cfg.branch_cost
                    if op is Opcode.JMP or inst.targets[0] == cont:
                        tk += 1
                else:
                    rt += 1
                    const_cycles += cfg.alu_cost
        return rt, nloads, nstores, tk, const_cycles

    def _nest_totals(self, unit: _Unit) -> tuple:
        rt, nloads, nstores, tk, const_cycles = self._unit_totals(unit)
        for node in unit.path:
            if isinstance(node, (_Unit, _Guarded)):
                inner = node.unit if isinstance(node, _Guarded) else node
                crt, cld, csr, ctk, ccc = self._nest_totals(inner)
                rt += crt
                nloads += cld
                nstores += csr
                tk += ctk
                const_cycles += ccc
        return rt, nloads, nstores, tk, const_cycles

    def _any_taken_exit(self, unit: _Unit) -> bool:
        for name in unit.own_blocks:
            terminator = self.function.block(name).terminator
            if (
                terminator.op is Opcode.BR
                and terminator.targets[0] != unit.cont[name]
            ):
                return True
        return any(
            self._any_taken_exit(
                node.unit if isinstance(node, _Guarded) else node
            )
            for node in unit.path
            if isinstance(node, (_Unit, _Guarded))
        )

    def _tail_srcs(self, node) -> tuple:
        if isinstance(node, _Unit):
            return node.exit_blocks
        if isinstance(node, _Guarded):
            return node.unit.exit_blocks
        return (node,)

    def _internal_edges(self, unit: _Unit) -> list:
        edges: list = []
        path = unit.path
        for i, node in enumerate(path):
            tgt = _entry(path[i + 1]) if i + 1 < len(path) else unit.header
            for src in self._tail_srcs(node):
                edges.append((src, tgt))
            if isinstance(node, _Unit):
                edges.extend(self._internal_edges(node))
            elif isinstance(node, _Guarded):
                # The guard's skip arm rejoins at the same continuation
                # the inner unit exits to.
                edges.append((node.guard, tgt))
                edges.extend(self._internal_edges(node.unit))
        return edges

    def _exit_edges(self) -> list:
        unit = self.unit
        edges: list = []
        for name in unit.own_blocks:
            terminator = self.function.block(name).terminator
            if terminator.op is Opcode.BR:
                for target in terminator.targets:
                    if (
                        target != unit.cont[name]
                        and target != unit.guards.get(name)
                    ):
                        edges.append((name, target))
        return edges

    def _collect_slots(self) -> tuple:
        """(preload, writeback) for the *uniform* registers only —
        divergent registers never leave the per-cell overlays."""
        read: set = set()
        written: set = set()
        divergent = self.divergent

        def note_read(value) -> None:
            if type(value) is not int and value not in divergent:
                read.add(value)

        def visit(unit: _Unit) -> None:
            for name in unit.own_blocks:
                for inst in self.function.block(name).non_phi_instructions():
                    if inst.dst is not None and inst.dst not in divergent:
                        written.add(inst.dst)
                    for arg in inst.args:
                        note_read(arg)
            for node in unit.path:
                if isinstance(node, _Unit):
                    visit(node)
                elif isinstance(node, _Guarded):
                    visit(node.unit)

        visit(self.unit)
        for src, tgt in self._internal_edges(self.unit):
            for phi in self.function.block(tgt).phis():
                if phi.dst not in divergent:
                    written.add(phi.dst)
                note_read(dict(phi.incomings)[src])
        for src, tgt in self._exit_edges():
            for phi in self.function.block(tgt).phis():
                incoming = dict(phi.incomings)
                if src in incoming:
                    note_read(incoming[src])
        preload = sorted(self.slots[r] for r in read | written)
        writeback = sorted(self.slots[r] for r in written)
        return preload, writeback

    # -- operand specs -------------------------------------------------
    def _pt_index(self, values: tuple) -> int:
        index = self._pt.get(values)
        if index is None:
            index = len(self.ptables)
            self._pt[values] = index
            self.ptables.append(values)
        return index

    def _spec(self, values) -> tuple:
        first = values[0]
        if type(first) is str:
            slot = self.slots[first]
            if first in self.divergent:
                return ("D", slot)
            return ("R", slot)
        if all(value == first for value in values[1:]):
            return ("C", first)
        return ("P", self._pt_index(tuple(values)))

    def _arg(self, insts, j) -> tuple:
        return self._spec([inst.args[j] for inst in insts])

    @staticmethod
    def _uniform(*specs) -> bool:
        return all(spec[0] in ("R", "C") for spec in specs)

    def uexpr(self, spec) -> str:
        kind, value = spec
        if kind == "R":
            return f"r{value}"
        return repr(value)

    def cexpr(self, spec) -> str:
        kind, value = spec
        if kind == "R":
            return f"r{value}"
        if kind == "C":
            return repr(value)
        if kind == "D":
            return f"_d[{value}]"
        return f"PT[{value}][_i]"

    # -- emission helpers ---------------------------------------------
    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def _normalize(self) -> None:
        """Fold compile-time pending into the runtime carry ``_pc`` so
        every loop-top is entered with state (carry, pending=0)."""
        if self._carry:
            if self._pending:
                self.emit(f"_pc += {self._pending}")
        else:
            self.emit(f"_pc = {self._pending}")
        self._carry = True
        self._pending = 0

    def _now_expr(self) -> str:
        k = self._pending
        if self._carry:
            return f"cy[_i] + {k} + _pc" if k else "cy[_i] + _pc"
        return f"cy[_i] + {k}" if k else "cy[_i]"

    def _consume(self) -> None:
        """Call after a site loop whose ``cy[_i] = _now ...`` writes
        absorbed the deferred cycles for every cell."""
        if self._carry:
            self.emit("_pc = 0")
            self._carry = False
        self._pending = 0

    def _mask_expr(self) -> str:
        if self.uniform_geometry:
            return str(self.l1_masks[0])
        return "L1M[_i]"

    def _lat_expr(self) -> str:
        if self.uniform_geometry:
            return str(self.l1_lats[0])
        return "L1L[_i]"

    def _emit_un(self, with_l1_hit: bool) -> None:
        """The prefetch-usefulness consumption arm (mirrors the
        fastpath hit arms; loads also count the L1 hit)."""
        if with_l1_hit:
            self.emit("C[_i].l1_hits += 1")
        self.emit("_u = UN[_i]")
        self.emit("if _u:")
        self.emit("    _sw = _u.pop(_line, None)")
        self.emit("    if _sw is not None:")
        self.emit("        if _sw:")
        self.emit("            C[_i].sw_prefetch_useful += 1")
        self.emit("        else:")
        self.emit("            C[_i].hw_prefetch_useful += 1")

    def _emit_functional(
        self, assign: str, fallback: str, store_value
    ) -> None:
        site = self._site
        self._site += 1
        s = f"_s{site}"
        self.emit(f"if {s} is None or not ({s}.base <= _a < {s}.end):")
        self.emit(f"    {s} = sp_find(_a)")
        self.emit(f"if {s} is None:")
        self.emit(f"    {assign}{fallback}")
        self.emit("else:")
        self.emit(f"    _o = _a - {s}.base")
        self.emit(f"    if _o & ({s}.elem_size - 1):")
        self.emit(f"        {assign}{fallback}")
        self.emit("    else:")
        if store_value is None:
            self.emit(f"        {assign}{s}.values[_o // {s}.elem_size]")
        else:
            self.emit(
                f"        {s}.values[_o // {s}.elem_size] = {store_value}"
            )

    # -- flush / exits -------------------------------------------------
    def _emit_materialize(self) -> None:
        """Materialize the deferred cycles (snapshot; no state change —
        exit arms are emitted inside branches the main path skips)."""
        k = self._pending
        if self._carry:
            if k:
                self.emit(f"_adv = _pc + {k}")
                self.emit("for _i in RNG:")
                self.emit("    cy[_i] += _adv")
            else:
                self.emit("if _pc:")
                self.emit("    for _i in RNG:")
                self.emit("        cy[_i] += _pc")
        elif k:
            self.emit("for _i in RNG:")
            self.emit(f"    cy[_i] += {k}")

    def _emit_flush(self, extra: tuple) -> None:
        ert, eld, esr, etk = extra
        self._emit_materialize()
        self.emit(
            f"st.retired += _rt + {ert}" if ert else "st.retired += _rt"
        )
        if self.has_ld:
            self.emit(
                f"st.loads += _ld + {eld}" if eld else "st.loads += _ld"
            )
        if self.has_sr:
            self.emit(
                f"st.stores += _sr + {esr}" if esr else "st.stores += _sr"
            )
        if self.has_tk:
            self.emit(
                f"st.taken += _tk + {etk}" if etk else "st.taken += _tk"
            )
        for slot in self.writeback:
            self.emit(f"R[{slot}] = r{slot}")

    def _phi_specs(self, src: str, tgt: str) -> list:
        targets = [f.block(tgt) for f in self.plan.functions]
        out: list = []
        for phis in _aligned_phis(targets):
            dst = phis[0].dst
            values = []
            for phi in phis:
                incoming = dict(phi.incomings)
                if src not in incoming:
                    raise IRError(
                        f"phi {dst} in {tgt} lacks incoming from {src}"
                    )
                values.append(incoming[src])
            out.append((dst, self._spec(values)))
        return out

    def _emit_divergent_copies(self, dpairs: list) -> None:
        """Per-cell parallel copies into the overlay (reads first, so
        divergent sources see pre-copy values — mirrors _batch_copies;
        uniform copies are emitted after and never read the overlay)."""
        if not dpairs:
            return
        self.emit("for _i in RNG:")
        self.emit("    _d = D[_i]")
        if len(dpairs) == 1:
            slot, spec = dpairs[0]
            self.emit(f"    _d[{slot}] = {self.cexpr(spec)}")
            return
        for index, (_, spec) in enumerate(dpairs):
            self.emit(f"    _q{index} = {self.cexpr(spec)}")
        for index, (slot, _) in enumerate(dpairs):
            self.emit(f"    _d[{slot}] = _q{index}")

    def _emit_edge_copies(self, src: str, tgt: str) -> None:
        """PHI parallel copies for an in-nest edge: divergent dsts into
        the overlays (read-before-write across cells), uniform dsts as
        local-to-local assignments with the sequential tier's
        parallel-safety rules."""
        upairs: list = []
        dpairs: list = []
        for dst, spec in self._phi_specs(src, tgt):
            if dst in self.divergent:
                dpairs.append((self.slots[dst], spec))
            else:
                upairs.append((f"r{self.slots[dst]}", self.uexpr(spec)))
        self._emit_divergent_copies(dpairs)
        if not upairs:
            return
        if len(upairs) == 1:
            dst, expr = upairs[0]
            if dst != expr:
                self.emit(f"{dst} = {expr}")
            return
        dsts = {dst for dst, _ in upairs}
        if all(expr not in dsts for dst, expr in upairs if expr != dst):
            for dst, expr in upairs:
                if dst != expr:
                    self.emit(f"{dst} = {expr}")
            return
        for index, (_, expr) in enumerate(upairs):
            self.emit(f"_p{index} = {expr}")
        for index, (dst, _) in enumerate(upairs):
            self.emit(f"{dst} = _p{index}")

    def _emit_exit_copies(self, src: str, tgt: str) -> None:
        """Exit-edge PHI copies straight into R / the overlays (the
        final writes on the way out; sources are locals/overlays, so
        ordering against the R writes is safe)."""
        upairs: list = []
        dpairs: list = []
        for dst, spec in self._phi_specs(src, tgt):
            if dst in self.divergent:
                dpairs.append((self.slots[dst], spec))
            else:
                upairs.append((self.slots[dst], self.uexpr(spec)))
        self._emit_divergent_copies(dpairs)
        for slot, expr in upairs:
            self.emit(f"R[{slot}] = {expr}")

    def _emit_unit_exit(
        self,
        src: str,
        exit_name: str,
        prefix: list,
        taken: bool,
        unit: _Unit,
        carried: tuple,
    ) -> None:
        tk_extra = prefix[3] + (1 if taken else 0)
        if unit is self.unit:
            self._emit_flush(
                (
                    carried[0] + prefix[0],
                    carried[1] + prefix[1],
                    carried[2] + prefix[2],
                    carried[3] + tk_extra,
                )
            )
            self._emit_exit_copies(src, exit_name)
            self.emit(f"return {self.block_index[exit_name]}")
        else:
            self.emit(f"_rt += {prefix[0]}")
            if prefix[1]:
                self.emit(f"_ld += {prefix[1]}")
            if prefix[2]:
                self.emit(f"_sr += {prefix[2]}")
            if tk_extra:
                self.emit(f"_tk += {tk_extra}")
            # Arm-local normalization: every break edge re-joins the
            # enclosing path with state (carry, pending=0).
            if self._carry:
                if self._pending:
                    self.emit(f"_pc += {self._pending}")
            else:
                self.emit(f"_pc = {self._pending}")
            self._emit_edge_copies(src, exit_name)
            self.emit("break")

    # -- main ----------------------------------------------------------
    _BINDS = (
        ("cy", "st.cycles"),
        ("D", "st.D"),
        ("LD", "st.mem_loads"),
        ("SR", "st.mem_stores"),
        ("PF", "st.mem_prefetches"),
        ("sp_load", "st.sp_load"),
        ("sp_store", "st.sp_store"),
        ("RNG", "cd.rng"),
        ("L1S", "cd.l1_sets"),
        ("L1M", "cd.l1_masks"),
        ("L1L", "cd.l1_lats"),
        ("C", "cd.counters"),
        ("UN", "cd.unused"),
        ("MEMS", "cd.mems"),
        ("LANE", "cd.lane"),
        ("sp_find", "cd.sp_find"),
    )

    def generate(self) -> str:
        self.lines = []
        self.indent = 1
        self._site = 0
        self._carry = False
        self._pending = 0

        # Entry guard: the instruction budget is the batch tier's only
        # observation point (no sampler, no trace), hoisted once — it
        # is run-constant while the superblock holds the core.
        self.emit("_gm = st.max_instructions - st.retired")
        self.emit(f"if {self.bound_retired} > _gm:")
        self.emit("    return -1")
        self.emit("_pc = 0")
        self._carry = True
        for slot in self.preload:
            self.emit(f"r{slot} = R[{slot}]")
        self.emit("_rt = 0")
        if self.has_ld:
            self.emit("_ld = 0")
        if self.has_sr:
            self.emit("_sr = 0")
        if self.has_tk:
            self.emit("_tk = 0")
        self._emit_unit(self.unit, (0, 0, 0, 0))

        body = _merge_cell_loops(self.lines)
        used = set(
            re.findall(
                r"\b(?:cy|D|LD|SR|PF|sp_load|sp_store|RNG|L1S|L1M|L1L"
                r"|C|UN|MEMS|LANE|sp_find)\b",
                "\n".join(body),
            )
        )
        header = ["def __batchsb(R, st, cd, PT):"]
        for name, expr in self._BINDS:
            if name in used:
                header.append(f"    {name} = {expr}")
        for site in range(self._memory_sites):
            header.append(f"    _s{site} = None")
        return "\n".join(header + body)

    def _emit_unit(self, unit: _Unit, carried: tuple) -> None:
        self._normalize()
        self.emit("while True:")
        self.indent += 1
        prefix = [0, 0, 0, 0]
        path = unit.path
        for i, node in enumerate(path):
            if isinstance(node, _Guarded):
                continue  # emitted inside its guard block's BR arm
            if isinstance(node, _Unit):
                inner_carried = (
                    carried[0] + prefix[0],
                    carried[1] + prefix[1],
                    carried[2] + prefix[2],
                    carried[3] + prefix[3],
                )
                self._emit_unit(node, inner_carried)
            else:
                nxt = path[i + 1] if i + 1 < len(path) else None
                self._emit_block(
                    node,
                    prefix,
                    unit,
                    carried,
                    nxt if isinstance(nxt, _Guarded) else None,
                )
        rt, nloads, nstores, tk, _ = self._unit_totals(unit)
        self.emit(f"_rt += {rt}")
        if nloads:
            self.emit(f"_ld += {nloads}")
        if nstores:
            self.emit(f"_sr += {nstores}")
        if tk:
            self.emit(f"_tk += {tk}")
        self._normalize()
        self.emit(
            f"if _rt + {self.bound_retired + carried[0]} > _gm:"
        )
        self.indent += 1
        self._emit_flush(carried)
        self.emit(f"return {self.block_index[unit.header]}")
        self.indent -= 1
        self.indent -= 1
        # Every way past this loop (break edges) normalized to the
        # loop-top invariant.
        self._carry = True
        self._pending = 0

    # -- per-op emission ----------------------------------------------
    def _emit_cell_assign(self, dst_slot: int, expr: str) -> None:
        self.emit("for _i in RNG:")
        if "_d[" in expr:
            self.emit("    _d = D[_i]")
            self.emit(f"    _d[{dst_slot}] = {expr}")
        else:
            self.emit(f"    D[_i][{dst_slot}] = {expr}")

    def _emit_load(self, insts, dst_divergent: bool) -> None:
        inst = insts[0]
        aspec = self._arg(insts, 0)
        dst_slot = self.slots[inst.dst]
        pc = inst.pc
        mask = self._mask_expr()
        lat = self._lat_expr()
        if aspec[0] in ("R", "C"):
            self.emit(f"_a = {self.uexpr(aspec)}")
            if dst_divergent:
                self._emit_functional("_v = ", "sp_load(_a)", None)
            self.emit("_line = _a >> 6")
            if self.vector:
                self.emit("_hits = LANE.probe(_line)")
            now = self._now_expr()
            self.emit("for _i in RNG:")
            self.indent += 1
            self.emit(f"_now = {now}")
            if self.vector:
                self.emit("if _hits[_i]:")
                self.indent += 1
                self._emit_un(True)
                self.emit(f"cy[_i] = _now + {lat}")
                self.indent -= 1
                self.emit("else:")
                self.indent += 1
            self.emit(f"_set = L1S[_i][_line & {mask}]")
            self.emit("_f = _set.pop(_line, None)")
            self.emit("if _f is None:")
            self.emit(f"    cy[_i] = _now + LD[_i](_a, _now, {pc})")
            if self.vector:
                self.emit("    LANE.dirty(_i)")
            self.emit("else:")
            self.indent += 1
            self.emit("_set[_line] = _f")
            if self.vector:
                self.emit("LANE.note(_i, _line)")
            self._emit_un(True)
            self.emit(f"cy[_i] = _now + {lat}")
            self.indent -= 1
            if self.vector:
                self.indent -= 1
            if dst_divergent:
                self.emit(f"D[_i][{dst_slot}] = _v")
            self.indent -= 1
            self._consume()
            if not dst_divergent:
                self._emit_functional(
                    f"r{dst_slot} = ", "sp_load(_a)", None
                )
        else:
            # Divergent address -> divergent value; everything per cell.
            now = self._now_expr()
            self.emit("for _i in RNG:")
            self.indent += 1
            self.emit("_d = D[_i]")
            self.emit(f"_a = {self.cexpr(aspec)}")
            self.emit("_line = _a >> 6")
            self.emit(f"_now = {now}")
            self.emit(f"_set = L1S[_i][_line & {mask}]")
            self.emit("_f = _set.pop(_line, None)")
            self.emit("if _f is None:")
            self.emit(f"    cy[_i] = _now + LD[_i](_a, _now, {pc})")
            if self.vector:
                self.emit("    LANE.dirty(_i)")
            self.emit("else:")
            self.indent += 1
            self.emit("_set[_line] = _f")
            if self.vector:
                self.emit("LANE.note(_i, _line)")
            self._emit_un(True)
            self.emit(f"cy[_i] = _now + {lat}")
            self.indent -= 1
            self._emit_functional(f"_d[{dst_slot}] = ", "sp_load(_a)", None)
            self.indent -= 1
            self._consume()

    def _emit_store(self, insts) -> None:
        inst = insts[0]
        aspec = self._arg(insts, 0)
        vspec = self._arg(insts, 1)
        pc = inst.pc
        mask = self._mask_expr()
        self.emit(f"_a = {self.uexpr(aspec)}")
        self.emit("_line = _a >> 6")
        if self.vector:
            self.emit("_hits = LANE.probe(_line)")
        now = self._now_expr()
        self.emit("for _i in RNG:")
        self.indent += 1
        self.emit(f"_now = {now}")
        if self.vector:
            self.emit("if _hits[_i]:")
            self.indent += 1
            self._emit_un(False)
            self.emit("cy[_i] = _now + 1")
            self.indent -= 1
            self.emit("else:")
            self.indent += 1
        self.emit(f"_set = L1S[_i][_line & {mask}]")
        self.emit("_f = _set.pop(_line, None)")
        self.emit("if _f is None:")
        self.emit(f"    cy[_i] = _now + SR[_i](_a, _now, {pc})")
        if self.vector:
            self.emit("    LANE.dirty(_i)")
        self.emit("else:")
        self.indent += 1
        self.emit("_set[_line] = _f")
        if self.vector:
            self.emit("LANE.note(_i, _line)")
        self._emit_un(False)
        self.emit("cy[_i] = _now + 1")
        self.indent -= 1
        if self.vector:
            self.indent -= 1
        self.indent -= 1
        self._consume()
        value = self.uexpr(vspec)
        self._emit_functional("", f"sp_store(_a, {value})", value)

    def _emit_prefetch(self, insts) -> None:
        inst = insts[0]
        aspec = self._arg(insts, 0)
        pc = inst.pc
        divergent_addr = aspec[0] not in ("R", "C")
        if not divergent_addr:
            self.emit(f"_a = {self.uexpr(aspec)}")
        now = self._now_expr()
        self.emit("for _i in RNG:")
        self.indent += 1
        if divergent_addr:
            self.emit("_d = D[_i]")
            self.emit(f"_a = {self.cexpr(aspec)}")
        self.emit(f"_now = {now}")
        self.emit("cy[_i] = _now")
        if self.vector:
            # The prefetch port only mutates L1 state through an MSHR
            # drain, and drains exactly under this condition.
            self.emit("_m = MEMS[_i]")
            self.emit("if _m._mshr and _now >= _m._mshr_next_ready:")
            self.emit("    LANE.dirty(_i)")
        self.emit(f"PF[_i](_a, _now, {pc})")
        self.indent -= 1
        self._consume()
        self._pending = self.config.prefetch_cost

    def _emit_block(
        self,
        name: str,
        prefix: list,
        unit: _Unit,
        carried: tuple,
        guarded: Optional[_Guarded] = None,
    ) -> None:
        cfg = self.config
        blocks = [f.block(name) for f in self.plan.functions]
        cont = unit.cont[name]
        divergent = self.divergent

        for insts in _aligned_rest(blocks):
            inst = insts[0]
            op = inst.op
            dst = inst.dst
            dst_div = dst is not None and dst in divergent
            if op in BINOP_EXPR:
                a = self._arg(insts, 0)
                b = self._arg(insts, 1)
                if not dst_div and self._uniform(a, b):
                    expr = BINOP_EXPR[op].format(
                        a=self.uexpr(a), b=self.uexpr(b)
                    )
                    self.emit(f"r{self.slots[dst]} = {expr}")
                else:
                    expr = BINOP_EXPR[op].format(
                        a=self.cexpr(a), b=self.cexpr(b)
                    )
                    self._emit_cell_assign(self.slots[dst], expr)
                self._pending += cfg.alu_cost
                prefix[0] += 1
            elif op is Opcode.GEP:
                base = self._arg(insts, 0)
                index = self._arg(insts, 1)
                scale = self._spec([i.args[2] for i in insts])
                if not dst_div and self._uniform(base, index, scale):
                    if index[0] == "C":
                        expr = f"{self.uexpr(base)} + {index[1] * scale[1]}"
                    elif scale[1] == 1:
                        expr = f"{self.uexpr(base)} + {self.uexpr(index)}"
                    else:
                        expr = (
                            f"{self.uexpr(base)} + "
                            f"{self.uexpr(index)}*{scale[1]}"
                        )
                    self.emit(f"r{self.slots[dst]} = {expr}")
                else:
                    if index[0] == "C" and scale[0] == "C":
                        expr = f"{self.cexpr(base)} + {index[1] * scale[1]}"
                    else:
                        expr = (
                            f"{self.cexpr(base)} + "
                            f"{self.cexpr(index)}*{self.cexpr(scale)}"
                        )
                    self._emit_cell_assign(self.slots[dst], expr)
                self._pending += cfg.alu_cost
                prefix[0] += 1
            elif op is Opcode.CONST:
                value = self._spec([i.args[0] for i in insts])
                if not dst_div and self._uniform(value):
                    self.emit(f"r{self.slots[dst]} = {value[1]!r}")
                else:
                    self._emit_cell_assign(
                        self.slots[dst], self.cexpr(value)
                    )
                self._pending += cfg.alu_cost
                prefix[0] += 1
            elif op is Opcode.MOV:
                a = self._arg(insts, 0)
                if not dst_div and self._uniform(a):
                    self.emit(f"r{self.slots[dst]} = {self.uexpr(a)}")
                else:
                    self._emit_cell_assign(self.slots[dst], self.cexpr(a))
                self._pending += cfg.alu_cost
                prefix[0] += 1
            elif op is Opcode.SELECT:
                c = self._arg(insts, 0)
                a = self._arg(insts, 1)
                b = self._arg(insts, 2)
                if not dst_div and self._uniform(c, a, b):
                    self.emit(
                        f"r{self.slots[dst]} = ({self.uexpr(a)}) if "
                        f"({self.uexpr(c)}) else ({self.uexpr(b)})"
                    )
                else:
                    self._emit_cell_assign(
                        self.slots[dst],
                        f"({self.cexpr(a)}) if ({self.cexpr(c)}) "
                        f"else ({self.cexpr(b)})",
                    )
                self._pending += cfg.alu_cost
                prefix[0] += 1
            elif op is Opcode.LOAD:
                self._emit_load(insts, dst_div)
                prefix[0] += 1
                prefix[1] += 1
            elif op is Opcode.STORE:
                self._emit_store(insts)
                prefix[0] += 1
                prefix[2] += 1
            elif op is Opcode.PREFETCH:
                self._emit_prefetch(insts)
                prefix[0] += 1
            elif op is Opcode.WORK:
                amount = inst.args[0]
                self._pending += amount * cfg.work_cpi
                prefix[0] += amount
            elif op is Opcode.JMP:
                self._pending += cfg.branch_cost
                prefix[0] += 1
                prefix[3] += 1
                self._emit_edge_copies(name, inst.targets[0])
            elif op is Opcode.BR:
                self._pending += cfg.branch_cost
                prefix[0] += 1
                cspec = self._arg(insts, 0)
                cond = self.uexpr(cspec)
                then_target, else_target = inst.targets
                if guarded is not None:
                    # Guarded inner unit (see the turbo tier): one arm
                    # runs the whole fused inner loop, the other skips
                    # it; both rejoin at ``guarded.skip``.  Normalize
                    # here so both arms see _pc absolute with nothing
                    # deferred and rejoin in that same state.
                    self._normalize()
                    enter = guarded.unit.header
                    skip = guarded.skip
                    if not guarded.enter_on_true:
                        prefix[3] += 1
                    arm = "if {}:" if guarded.enter_on_true else (
                        "if not ({}):"
                    )
                    self.emit(arm.format(cond))
                    self.indent += 1
                    self.emit(
                        "_tk += 1" if guarded.enter_on_true else "_tk -= 1"
                    )
                    self._emit_edge_copies(name, enter)
                    inner_carried = (
                        carried[0] + prefix[0],
                        carried[1] + prefix[1],
                        carried[2] + prefix[2],
                        carried[3] + prefix[3],
                    )
                    self._emit_unit(guarded.unit, inner_carried)
                    self.indent -= 1
                    self.emit("else:")
                    self.indent += 1
                    before = len(self.lines)
                    self._emit_edge_copies(name, skip)
                    if len(self.lines) == before:
                        self.emit("pass")
                    self.indent -= 1
                    continue
                if then_target == cont:
                    self.emit(f"if not ({cond}):")
                    self.indent += 1
                    self._emit_unit_exit(
                        name, else_target, prefix, False, unit, carried
                    )
                    self.indent -= 1
                    prefix[3] += 1
                    continuation = then_target
                else:
                    self.emit(f"if {cond}:")
                    self.indent += 1
                    self._emit_unit_exit(
                        name, then_target, prefix, True, unit, carried
                    )
                    self.indent -= 1
                    continuation = else_target
                self._emit_edge_copies(name, continuation)
            else:  # pragma: no cover - guarded by block_is_fusable
                raise IRError(f"unhandled opcode {op!r} in batch superblock")


# ----------------------------------------------------------------------
# Containers + compile entry point
# ----------------------------------------------------------------------
class BatchSuperblock:
    """One fused loop nest compiled for all cells."""

    __slots__ = (
        "header",
        "header_index",
        "path",
        "depth",
        "run",
        "source",
        "bound_cycles",
        "bound_retired",
        "ptables",
    )

    def __init__(
        self,
        header: str,
        header_index: int,
        path: tuple,
        depth: int,
        run,
        source: str,
        bound_cycles: int,
        bound_retired: int,
        ptables: tuple,
    ) -> None:
        self.header = header
        self.header_index = header_index
        self.path = path
        self.depth = depth
        self.run = run
        self.source = source
        self.bound_cycles = bound_cycles
        self.bound_retired = bound_retired
        self.ptables = ptables


def _build_batch_superblock(
    plan: _FunctionPlan,
    config: MachineConfig,
    compiler: _BatchBlockCompiler,
    unit: _Unit,
    cell_configs: Sequence[MachineConfig],
    vector: bool,
) -> BatchSuperblock:
    codegen = _BatchSuperblockCodegen(
        plan, config, compiler, unit, cell_configs, vector
    )
    source = codegen.generate()
    filename = f"<batchsb:{plan.name}:{unit.header}:{next(_counter)}>"
    namespace: dict = {}
    exec(compile(source, filename, "exec"), namespace)  # noqa: S102
    return BatchSuperblock(
        header=unit.header,
        header_index=compiler.block_index[unit.header],
        path=tuple(_flatten(unit)),
        depth=_depth(unit),
        run=namespace["__batchsb"],
        source=source,
        bound_cycles=codegen.bound_cycles,
        bound_retired=codegen.bound_retired,
        ptables=tuple(codegen.ptables),
    )


class BatchTurboCompiledFunction(BatchCompiledFunction):
    """The batch tier's per-block chains plus batch superblocks.

    Unfused blocks dispatch exactly as the per-block batch engine
    does; a fused header hands control to the generated stepper, which
    runs whole iterations for all cells until the budget guard trips
    (or declines with ``-1``) — per-block dispatch then replays to the
    exact boundary and re-enters bulk at the next fused header.
    """

    def __init__(
        self,
        plan: _FunctionPlan,
        blocks: tuple,
        block_names: tuple,
        entry_index: int,
        register_count: int,
        needs_overlay: bool,
        ret_divergent: bool,
        superblocks: tuple,
    ) -> None:
        super().__init__(
            plan,
            blocks,
            block_names,
            entry_index,
            register_count,
            needs_overlay,
            ret_divergent,
        )
        self._superblocks = superblocks
        self.bulk_calls = 0
        self.bulk_iters = 0
        self.guard_declines = 0
        self.adaptive_cleared = 0

    def superblocks(self) -> list:
        return [sb for sb in self._superblocks if sb is not None]

    def stats(self) -> dict:
        stats = super().stats()
        fused = self.superblocks()
        stats["superblocks"] = len(fused)
        stats["fused_blocks"] = sum(len(sb.path) for sb in fused)
        stats["max_fusion_depth"] = max(
            (sb.depth for sb in fused), default=0
        )
        stats["bulk_calls"] = self.bulk_calls
        stats["bulk_iters"] = self.bulk_iters
        stats["guard_declines"] = self.guard_declines
        stats["adaptive_cleared"] = self.adaptive_cleared
        return stats

    def __call__(self, bm, args: Sequence[int] = ()):
        function = self.plan.functions[0]
        if len(args) != len(function.params):
            raise IRError(
                f"{function.name} expects {len(function.params)} args, "
                f"got {len(args)}"
            )
        st = _BatchFrame()
        st.counters = bm.cell_counters
        st.mem_loads = bm.load_ports
        st.mem_stores = bm.store_ports
        st.mem_prefetches = bm.prefetch_ports
        st.sp_load = bm.space.load
        st.sp_store = bm.space.store
        st.invoke = bm._invoke
        st.cycles = [int(counters.cycles) for counters in st.counters]
        st.retired = 0
        st.loads = 0
        st.stores = 0
        st.taken = 0
        st.value = 0
        if self._needs_overlay:
            st.D = [
                [0] * self._register_count for _ in range(bm.ncells)
            ]
        else:
            st.D = ()
        max_instructions = bm.config.max_instructions
        st.max_instructions = max_instructions
        cd = bm.bindings
        lane = cd.lane

        R = [0] * self._register_count
        for slot, value in enumerate(args):
            R[slot] = int(value)

        blocks = self._blocks
        superblocks = list(self._superblocks)
        sb_calls = [0] * len(superblocks)
        sb_iters = [0] * len(superblocks)
        declined = 0
        bi = self._entry
        try:
            while True:
                if st.retired > max_instructions:
                    raise ExecutionLimitExceeded(
                        f"{function.name}: exceeded {max_instructions} "
                        f"instructions"
                    )
                sb = superblocks[bi]
                if sb is not None:
                    before = st.retired
                    nxt = sb.run(R, st, cd, sb.ptables)
                    if nxt >= 0:
                        calls = sb_calls[bi] + 1
                        sb_calls[bi] = calls
                        sb_iters[bi] += (
                            st.retired - before
                        ) // sb.bound_retired
                        if calls == _ADAPT_WARMUP and (
                            sb_iters[bi] < calls * _ADAPT_MIN_ITERS
                        ):
                            superblocks[bi] = None
                        bi = nxt
                        continue
                    declined += 1
                st.next = _FELL_THROUGH
                for op in blocks[bi]:
                    op(R, st)
                if lane is not None:
                    # Per-block op closures call the ports directly,
                    # outside the note/dirty discipline.
                    lane.dirty_all()
                nxt = st.next
                if nxt < 0:
                    if nxt == _RETURNED:
                        return st.value
                    raise IRError(
                        f"block {self._block_names[bi]} fell through "
                        f"without terminator"
                    )
                bi = nxt
        finally:
            self.bulk_calls += sum(sb_calls)
            self.bulk_iters += sum(sb_iters)
            self.guard_declines += declined
            self.adaptive_cleared += sum(
                1
                for original, current in zip(self._superblocks, superblocks)
                if original is not None and current is None
            )


def compile_batch_turbo(
    plan: _FunctionPlan,
    plans: dict,
    config: MachineConfig,
    cell_configs: Sequence[MachineConfig],
    vector: bool = False,
) -> BatchTurboCompiledFunction:
    """Compile one aligned function plan for the batchturbo tier: the
    per-block batch chains plus a batch superblock per fusable loop
    nest (verdicts from the shared :mod:`repro.machine.fusion`
    analysis on cell 0, exact for every cell because alignment pins
    opcode shape and divergent WORK amounts are banned)."""
    compiler = _BatchBlockCompiler(plan, plans, config)
    blocks = tuple(
        compiler.compile_block(aligned)
        for aligned in zip(*(list(f.blocks) for f in plan.functions))
    )
    function0 = plan.functions[0]
    superblocks: list = [None] * len(blocks)
    for unit in discover_units(function0).values():
        superblocks[compiler.block_index[unit.header]] = (
            _build_batch_superblock(
                plan, config, compiler, unit, cell_configs, vector
            )
        )
    return BatchTurboCompiledFunction(
        plan,
        blocks,
        tuple(block.name for block in function0.blocks),
        compiler.block_index[function0.entry.name],
        len(compiler.slots),
        compiler.has_divergence,
        plan.ret_divergent,
        tuple(superblocks),
    )
