"""Machine configuration: core cost model + memory hierarchy + profiling.

All costs are integer cycles so both execution engines (reference
interpreter and translating engine) produce bit-identical timing.

The core is a blocking in-order pipeline: ALU work costs
``alu_cost``/instruction, demand loads pay the full latency of the level
that serves them, software prefetches are non-blocking.  This is the
minimal machine on which prefetch *timeliness* — the paper's subject — is
observable.  It under-models out-of-order memory-level parallelism, so
absolute speedups exceed the paper's; shapes and orderings are preserved
(see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import ClassVar, Optional

from repro.mem.config import CacheConfig, MemoryConfig

#: Canonical engine names, fastest first.
#:
#: * ``turbo`` — fast engine plus fused hot-loop superblocks with
#:   steady-state bulk stepping (repro.machine.superblock).
#: * ``fast`` — closure-chain block engine (repro.machine.blockengine).
#: * ``translate`` — source-codegen engine (repro.machine.translator).
#: * ``reference`` — the obviously-correct interpreter the others are
#:   differentially tested against (repro.machine.interpreter).
ENGINES = ("turbo", "fast", "translate", "reference")

#: Legacy spellings still accepted (Machine warns on explicit use).
ENGINE_ALIASES = {"interpret": "reference"}


def normalize_engine(engine: str) -> str:
    """Map aliases to canonical names; reject unknown engines."""
    canonical = ENGINE_ALIASES.get(engine, engine)
    if canonical not in ENGINES:
        known = ENGINES + tuple(ENGINE_ALIASES)
        raise ValueError(f"engine must be one of {known}, got {engine!r}")
    return canonical


def _default_engine() -> str:
    """Session default: the REPRO_ENGINE env var, else ``fast``."""
    return normalize_engine(os.environ.get("REPRO_ENGINE", "fast"))


def _default_code_cache() -> Optional[str]:
    """Session default: the REPRO_CODE_CACHE env var (a cache directory,
    or a disabled spelling like ``off``), else None (no persistent code
    cache; :class:`~repro.service.api.TuningService` still auto-enables
    one alongside its artifact cache directory)."""
    return os.environ.get("REPRO_CODE_CACHE") or None


def paper_like_memory() -> MemoryConfig:
    """Memory hierarchy loosely mirroring Table 2's Xeon Gold 5218,
    capacities scaled ~1/16 to 1/40 (so scaled-down workload footprints
    keep the paper's working-set : LLC ratio), with effective (pipelined)
    L1 latency and level-latency ratios preserved."""
    return MemoryConfig(
        l1=CacheConfig("L1D", 8 * 1024, 8, 2),
        l2=CacheConfig("L2", 64 * 1024, 8, 12),
        llc=CacheConfig("LLC", 512 * 1024, 16, 40),
        dram_latency=360,
        mshr_entries=48,
    )


@dataclass(frozen=True)
class MachineConfig:
    """Everything the execution engines need to know."""

    memory: MemoryConfig = field(default_factory=paper_like_memory)

    #: Which execution engine Machine uses by default.  All engines are
    #: bit-identical in timing and counters; this knob only trades
    #: startup cost vs steady-state speed (and selects the reference
    #: interpreter for differential testing).  Defaults to the
    #: ``REPRO_ENGINE`` environment variable, else ``fast``.
    engine: str = field(default_factory=_default_engine)

    #: Persistent AOT code cache directory for the pure-codegen engines
    #: (turbo superblocks, the translating engine) — see
    #: :mod:`repro.machine.codecache`.  None disables; so do the
    #: spellings in ``codecache.DISABLED_VALUES`` ("off", "0", "none"),
    #: which is how a caller overrides a service's auto-enable.
    #: Defaults to the ``REPRO_CODE_CACHE`` environment variable.
    #:
    #: Non-semantic: the knob changes where compiled artifacts live,
    #: never what any engine computes, so it is excluded from
    #: :func:`repro.service.store.config_fingerprint` (artifact keys
    #: stay identical across cache locations).
    code_cache: Optional[str] = field(default_factory=_default_code_cache)

    # Core cost model (integer cycles).
    alu_cost: int = 1
    branch_cost: int = 1
    prefetch_cost: int = 1
    work_cpi: int = 1

    # Profiling hardware.
    lbr_entries: int = 32  # Intel LBR depth on the paper's machine
    lbr_sample_period: int = 20_000  # cycles between LBR snapshots
    #: Loads with latency >= this are PEBS-sampled (perf mem ldlat style);
    #: 0 means "derive from the LLC latency" (LLC hit latency + 1).
    pebs_latency_threshold: int = 0

    # Safety net against runaway programs.
    max_instructions: int = 2_000_000_000

    #: Fields dropped from config_fingerprint (see ``code_cache`` above).
    _NONSEMANTIC_FIELDS: ClassVar[tuple[str, ...]] = ("code_cache",)

    def __post_init__(self) -> None:
        object.__setattr__(self, "engine", normalize_engine(self.engine))

    def effective_pebs_threshold(self) -> int:
        if self.pebs_latency_threshold > 0:
            return self.pebs_latency_threshold
        return self.memory.llc.latency + 1

    def with_memory(self, memory: MemoryConfig) -> "MachineConfig":
        return replace(self, memory=memory)


DEFAULT_CONFIG = MachineConfig()
