"""Last Branch Record model (paper §3.1, Fig 3).

The LBR is a ring buffer of the last N *taken* branches; every entry holds
the branch PC, its target, and the cycle at which it executed.  Snapshots
of the buffer are what the profiler collects; two instances of the same
loop-latch branch PC in one snapshot yield one loop-iteration latency
measurement, and runs of inner-latch PCs between outer-latch PCs yield
trip counts.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, NamedTuple


class LBREntry(NamedTuple):
    from_pc: int
    to_pc: int
    cycle: int


class LastBranchRecord:
    """A fixed-depth ring buffer of taken branches."""

    __slots__ = ("entries", "depth")

    def __init__(self, depth: int = 32) -> None:
        self.depth = depth
        self.entries: deque = deque(maxlen=depth)

    def push(self, entry: tuple) -> None:
        """Record a taken branch: ``(from_pc, to_pc, cycle)``."""
        self.entries.append(entry)

    def snapshot(self) -> tuple:
        """Oldest-to-newest copy of the current buffer contents."""
        return tuple(LBREntry(*e) for e in self.entries)

    def clear(self) -> None:
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterable[LBREntry]:
        return (LBREntry(*e) for e in self.entries)


class NullLBR:
    """No-op LBR used when profiling is disabled (keeps engines branch-free)."""

    __slots__ = ("depth",)

    def __init__(self) -> None:
        self.depth = 0

    def push(self, entry: tuple) -> None:
        pass

    def snapshot(self) -> tuple:
        return ()

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0
