"""Execution machinery: cost model, PMU, LBR, samplers, and engines."""

from repro.machine.batch import (
    BatchCell,
    BatchDivergence,
    BatchMachine,
    BatchOutcome,
    run_batch,
)
from repro.machine.blockengine import BlockCompiledFunction, compile_blocks
from repro.machine.config import (
    DEFAULT_CONFIG,
    ENGINE_ALIASES,
    ENGINES,
    MachineConfig,
    normalize_engine,
    paper_like_memory,
)
from repro.machine.context import ExecutionContext
from repro.machine.interpreter import ExecutionLimitExceeded, run_function
from repro.machine.lbr import LastBranchRecord, LBREntry, NullLBR
from repro.machine.machine import Machine, RunResult
from repro.machine.pmu import Counters, PerfStat
from repro.machine.sampler import ProfileSampler
from repro.machine.superblock import TurboCompiledFunction, compile_turbo
from repro.machine.translator import CompiledFunction, compile_function

__all__ = [
    "BatchCell",
    "BatchDivergence",
    "BatchMachine",
    "BatchOutcome",
    "BlockCompiledFunction",
    "CompiledFunction",
    "Counters",
    "DEFAULT_CONFIG",
    "ENGINE_ALIASES",
    "ENGINES",
    "ExecutionContext",
    "ExecutionLimitExceeded",
    "LBREntry",
    "LastBranchRecord",
    "Machine",
    "MachineConfig",
    "NullLBR",
    "PerfStat",
    "ProfileSampler",
    "RunResult",
    "TurboCompiledFunction",
    "compile_blocks",
    "compile_function",
    "compile_turbo",
    "normalize_engine",
    "paper_like_memory",
    "run_batch",
    "run_function",
]
