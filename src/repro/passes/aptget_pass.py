"""The APT-GET LLVM-pass analog (paper §3.5, Algorithm 2).

Consumes the hint list produced by the profile analysis.  For every
delinquent-load hint it resolves the PC to the IR instruction (our exact
AutoFDO mapping), extracts the load-slice, and injects a prefetch slice
at the prescribed site with the prescribed distance:

* one induction PHI        -> InjectPrefetchesOnePhi  (inner site);
* multiple induction PHIs  -> InjectPrefetchesMorePhis (inner or outer
  site per Eq-2, outer falls back to inner when structurally impossible).

When the module has no matching samples at all (``AutoFDOMapping`` false
in Algorithm 2) the pass can optionally fall back to the static A&J
scheme, mirroring Algorithm 2 lines 35-38.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.loops import find_loops, innermost_loop_of
from repro.analysis.slices import slice_for_pc
from repro.core.hints import HintSet, PrefetchHint
from repro.core.site import InjectionSite, site_label
from repro.ir.nodes import Module
from repro.passes.ainsworth_jones import (
    AinsworthJonesConfig,
    AinsworthJonesPass,
    PassReport,
)
from repro.passes.cleanup import cleanup_module
from repro.passes.inject import InjectionResult, inject_inner, inject_outer


@dataclass(frozen=True)
class AptGetPassConfig:
    """Pass-side knobs."""

    #: When a hint asks for the outer site but outer injection is
    #: structurally impossible, retry at the inner site.
    outer_fallback_to_inner: bool = True
    #: With no hints at all, run the static baseline instead
    #: (Algorithm 2's no-samples path).  Disabled by default so that
    #: experiment comparisons stay clean.
    static_fallback: bool = False
    static_distance: int = 32
    #: Run CSE/DCE after injection (models the rest of the -O3 pipeline).
    cleanup: bool = True


class AptGetPass:
    """Profile-guided prefetch injection."""

    name = "apt-get"

    def __init__(
        self,
        hints: HintSet,
        config: Optional[AptGetPassConfig] = None,
    ) -> None:
        self.hints = hints
        self.config = config or AptGetPassConfig()

    def run(self, module: Module) -> PassReport:
        report = PassReport()
        if not len(self.hints):
            if self.config.static_fallback:
                fallback = AinsworthJonesPass(
                    AinsworthJonesConfig(distance=self.config.static_distance)
                )
                return fallback.run(module)
            module.finalize()
            return report

        for hint in self.hints:
            result = self._apply_hint(module, hint)
            report.record(hint.load_pc, hint.function, result)
        if self.config.cleanup:
            cleaned = cleanup_module(module)
            report.added_instructions -= cleaned.total
        module.finalize()
        return report

    # ------------------------------------------------------------------
    def _apply_hint(self, module: Module, hint: PrefetchHint) -> InjectionResult:
        if hint.function not in module.functions:
            return InjectionResult(False, f"no function {hint.function!r}")
        function = module.function(hint.function)
        resolved = slice_for_pc(function, hint.load_pc)
        if resolved is None:
            return InjectionResult(
                False, f"no load at pc {hint.load_pc:#x} (stale profile?)"
            )
        load, load_slice = resolved
        loops = find_loops(function)
        block = next(
            b for b in function.blocks if load in b.instructions
        )
        inner = innermost_loop_of(loops, block.name)
        if inner is None:
            return InjectionResult(False, "load not inside a loop")

        if hint.site is InjectionSite.OUTER:
            if inner.parent is not None:
                result = inject_outer(
                    function,
                    load,
                    load_slice,
                    inner_loop=inner,
                    outer_loop=inner.parent,
                    distance=hint.effective_distance,
                    sweep=hint.sweep,
                    site_label=site_label(
                        hint.function, hint.load_pc, InjectionSite.OUTER
                    ),
                )
                if result.success:
                    return result
            else:
                result = InjectionResult(False, "load not in a nested loop")
            if not self.config.outer_fallback_to_inner:
                return result
        return inject_inner(
            function,
            load,
            load_slice,
            inner,
            distance=hint.distance,
            minimal_clone=True,
            site_label=site_label(
                hint.function, hint.load_pc, InjectionSite.INNER
            ),
        )
