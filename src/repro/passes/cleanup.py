"""Post-injection cleanup: block-local CSE and dead-code elimination.

In the real system both prefetching passes run inside LLVM's -O3
pipeline, so redundant address arithmetic created by slice cloning is
cleaned up by later passes (GVN/DCE) before code generation.  This
module models that: it deduplicates *pure* computations within a basic
block and deletes pure instructions whose results are never used.

Only side-effect-free operations participate (ALU, compares, select,
GEP, const, mov).  Loads are never touched: even a dead load changes
cache state; stores, prefetches, WORK, control flow are side effects by
definition.  PHIs are left alone for simplicity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.nodes import Function, Module
from repro.ir.opcodes import BINOP_EXPR, Opcode

#: Opcodes that are referentially transparent (safe to merge/delete).
PURE_OPS = frozenset(BINOP_EXPR) | {
    Opcode.GEP,
    Opcode.SELECT,
    Opcode.CONST,
    Opcode.MOV,
}


@dataclass
class CleanupReport:
    cse_replaced: int = 0
    dce_removed: int = 0

    @property
    def total(self) -> int:
        return self.cse_replaced + self.dce_removed


def local_cse(function: Function) -> int:
    """Merge identical pure computations within each block.

    Scans each block top-down keeping a value-number table keyed by
    ``(opcode, operands)``; a recomputation is deleted and later uses are
    rewritten to the first definition.  Operand keys see earlier
    rewrites, so chains of duplicates collapse in one pass.
    """
    replaced = 0
    for block in function.blocks:
        table: dict[tuple, str] = {}
        rewrite: dict[str, str] = {}
        kept = []
        for inst in block.instructions:
            if rewrite:
                inst.replace_operands(rewrite)
            if inst.op in PURE_OPS and inst.dst is not None:
                key = (inst.op, inst.args)
                existing = table.get(key)
                if existing is not None:
                    rewrite[inst.dst] = existing
                    replaced += 1
                    continue  # drop the duplicate
                table[key] = inst.dst
            kept.append(inst)
        block.instructions[:] = kept
        if rewrite:
            # Uses may extend past this block (the first def dominates
            # whatever the duplicate dominated, since both were in the
            # same block), and same-block PHIs may reference the removed
            # duplicate through a back edge — rewrite everything.
            for other in function.blocks:
                for inst in other.instructions:
                    inst.replace_operands(rewrite)
    return replaced


def dead_code_elimination(function: Function) -> int:
    """Delete pure instructions whose results are never used (to fixpoint)."""
    removed = 0
    while True:
        used: set[str] = set()
        for inst in function.instructions():
            for register in inst.register_operands():
                used.add(register)
        dead = [
            inst
            for inst in function.instructions()
            if inst.op in PURE_OPS
            and inst.dst is not None
            and inst.dst not in used
        ]
        if not dead:
            return removed
        dead_ids = {id(inst) for inst in dead}
        for block in function.blocks:
            block.instructions[:] = [
                inst
                for inst in block.instructions
                if id(inst) not in dead_ids
            ]
        removed += len(dead)


def cleanup_module(module: Module) -> CleanupReport:
    """Run CSE then DCE over every function; re-finalizes the module."""
    report = CleanupReport()
    for function in module.functions.values():
        report.cse_replaced += local_cse(function)
        report.dce_removed += dead_code_elimination(function)
    module.finalize()
    return report
