"""End-to-end APT-GET pipeline: build -> profile -> analyze -> re-build ->
inject -> (caller runs).  This is the single-profiling-run workflow of
§3.4 packaged as one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.aptget import AptGet, AptGetConfig
from repro.core.hints import HintSet
from repro.ir.nodes import Module
from repro.machine.config import MachineConfig
from repro.machine.machine import Machine
from repro.mem.address import AddressSpace
from repro.passes.aptget_pass import AptGetPass, AptGetPassConfig
from repro.passes.ainsworth_jones import PassReport
from repro.profiling.collect import collect_profile
from repro.profiling.profile import ExecutionProfile

#: A builder returns a fresh, deterministic (module, address space) pair —
#: the moral equivalent of recompiling the same sources.
Builder = Callable[[], tuple[Module, AddressSpace]]


@dataclass
class OptimizationOutcome:
    """Everything the pipeline produced."""

    module: Module
    space: AddressSpace
    hints: HintSet
    profile: ExecutionProfile
    report: PassReport


def profile_and_optimize(
    build: Builder,
    function: str = "main",
    args: Sequence[int] = (),
    machine_config: Optional[MachineConfig] = None,
    aptget_config: Optional[AptGetConfig] = None,
    pass_config: Optional[AptGetPassConfig] = None,
    profile_period: Optional[int] = None,
) -> OptimizationOutcome:
    """Run the full APT-GET workflow against a workload builder.

    The profiling run uses one build; the optimized module is a fresh,
    identical build (same PCs) with prefetch slices injected, paired with
    a fresh address space so the caller measures cold-start behaviour.
    """
    # Step 1-2: profile one run (perf record with LBR + PEBS).
    profile_module, profile_space = build()
    profiling_machine = Machine(
        profile_module, profile_space, config=machine_config
    )
    profile = collect_profile(
        profiling_machine, function=function, args=args, period=profile_period
    )

    # Step 3-5: analytical model -> hints.
    analyzer = AptGet(aptget_config)
    hints = analyzer.analyze(profile_module, profile)

    # Step 6: recompile with the injection pass.
    optimized_module, optimized_space = build()
    report = AptGetPass(hints, pass_config).run(optimized_module)
    return OptimizationOutcome(
        module=optimized_module,
        space=optimized_space,
        hints=hints,
        profile=profile,
        report=report,
    )
