"""Prefetch-slice injection: the mechanics shared by both passes.

Given a load, its slice, a loop, and a prefetch-distance, injection

1. computes the *advanced* induction value ``iv + distance x step``
   (supporting non-canonical ``i *= c`` recurrences, §3.5);
2. clamps it against the loop bound when statically visible —
   ``min(bound, iv + distance)``, exactly Listing 4's select-clamp — so
   end-of-loop prefetches degenerate to duplicates instead of wild
   addresses (unclamped out-of-range prefetches are dropped harmlessly by
   the memory system, like real prefetch instructions that never fault);
3. clones the slice, substituting the advanced value for the induction
   PHI, and replaces the delinquent load with a PREFETCH.

Inner-site injection places the clone right before the original load.
Outer-site injection (§3.3) places it in the inner loop's preheader —
executed once per outer iteration — substituting the inner PHI with its
initial value (or a sweep of the first ``sweep`` iteration values) and
advancing the *outer* PHI instead.

APT-GET's clones are *minimal*: slice instructions independent of the
advanced PHI are reused, not duplicated (Listing 4 reuses ``%2``).  The
Ainsworth & Jones baseline clones the full slice, which is one source of
its higher instruction overhead (Fig 11).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.loops import (
    InductionVariable,
    Loop,
    LoopBound,
    induction_variables,
    loop_bound,
)
from repro.analysis.slices import LoadSlice
from repro.ir.nodes import Function, Instruction, Operand
from repro.ir.opcodes import Opcode


@dataclass
class InjectionResult:
    """Outcome of one injection attempt."""

    success: bool
    reason: str = ""
    added_instructions: int = 0
    prefetches_emitted: int = 0
    site: str = "inner"

    def __bool__(self) -> bool:
        return self.success


class _Names:
    """Fresh-register allocator (single scan, then a counter)."""

    def __init__(self, function: Function) -> None:
        self._taken = {
            inst.dst
            for inst in function.instructions()
            if inst.dst is not None
        }
        self._taken.update(function.params)
        self._counter = itertools.count()

    def fresh(self, hint: str = "pf") -> str:
        while True:
            name = f"{hint}.{next(self._counter)}"
            if name not in self._taken:
                self._taken.add(name)
                return name


def _find_slice_iv(
    function: Function, loop: Loop, load_slice: LoadSlice
) -> Optional[InductionVariable]:
    """The induction variable of ``loop`` that the slice depends on."""
    slice_phi_ids = {id(phi) for phi in load_slice.phis}
    for indvar in induction_variables(function, loop):
        if id(indvar.phi) in slice_phi_ids:
            return indvar
    return None


def _emit_advanced_iv(
    indvar: InductionVariable,
    distance: int,
    names: _Names,
) -> tuple[list[Instruction], Operand]:
    """Instructions computing the induction value ``distance`` iterations
    ahead of ``indvar``'s current value."""
    instructions: list[Instruction] = []
    register = indvar.register
    step = indvar.step
    if indvar.step_op is Opcode.ADD or indvar.step_op is Opcode.SUB:
        op = Opcode.ADD if indvar.step_op is Opcode.ADD else Opcode.SUB
        if isinstance(step, int):
            offset: Operand = distance * step
        else:
            offset = names.fresh("pf.off")
            instructions.append(
                Instruction(Opcode.MUL, dst=offset, args=(step, distance))
            )
        advanced = names.fresh("pf.adv")
        instructions.append(
            Instruction(op, dst=advanced, args=(register, offset))
        )
        return instructions, advanced
    if indvar.step_op is Opcode.MUL and isinstance(step, int):
        factor = step ** distance
        advanced = names.fresh("pf.adv")
        instructions.append(
            Instruction(Opcode.MUL, dst=advanced, args=(register, factor))
        )
        return instructions, advanced
    return [], register  # unknown recurrence: no advance possible


def _emit_clamp(
    function: Function,
    loop: Loop,
    indvar: InductionVariable,
    advanced: Operand,
    names: _Names,
) -> tuple[list[Instruction], Operand]:
    """Clamp the advanced index to the loop bound (Listing 4's min/select).

    Only emitted for upward-counting ADD recurrences with a LT/LE exit
    compare; otherwise the advanced value is used unclamped and the memory
    system drops out-of-segment prefetches.
    """
    if indvar.step_op is not Opcode.ADD:
        return [], advanced
    if isinstance(indvar.step, int) and indvar.step <= 0:
        return [], advanced
    bound = loop_bound(function, loop, indvar)
    if bound is None or bound.compare.op not in (Opcode.CMP_LT, Opcode.CMP_LE):
        return [], advanced
    instructions: list[Instruction] = []
    limit: Operand
    if bound.compare.op is Opcode.CMP_LT:
        if isinstance(bound.bound, int):
            limit = bound.bound - 1
        else:
            limit = names.fresh("pf.lim")
            instructions.append(
                Instruction(Opcode.SUB, dst=limit, args=(bound.bound, 1))
            )
    else:
        limit = bound.bound
    clamped = names.fresh("pf.idx")
    instructions.append(
        Instruction(Opcode.MIN, dst=clamped, args=(advanced, limit))
    )
    return instructions, clamped


def _clone_slice(
    load_slice: LoadSlice,
    substitutions: dict[str, Operand],
    names: _Names,
    minimal: bool,
) -> tuple[list[Instruction], dict[str, Operand]]:
    """Clone the slice applying ``substitutions`` (phi register -> operand).

    With ``minimal`` (APT-GET), only instructions transitively dependent
    on a substituted register are cloned; independent ones are reused via
    their original registers.  Without it (A&J), everything is cloned.
    """
    mapping: dict[str, Operand] = dict(substitutions)
    dependent = set(substitutions)
    clones: list[Instruction] = []
    for instruction in load_slice.instructions:
        depends = any(
            operand in dependent
            for operand in instruction.register_operands()
        )
        if minimal and not depends:
            continue
        clone = instruction.copy()
        clone.replace_operands(mapping)
        assert clone.dst is not None
        new_dst = names.fresh("pf")
        mapping[clone.dst] = new_dst
        dependent.add(clone.dst)
        clone.dst = new_dst
        clone.pc = -1
        clones.append(clone)
    return clones, mapping


def _prefetch_from(
    load: Instruction, mapping: dict[str, Operand]
) -> Optional[Instruction]:
    address = load.args[0]
    if isinstance(address, str):
        address = mapping.get(address, address)
        if address == load.args[0] and load.args[0] not in mapping:
            # Address did not change: the slice does not depend on the
            # advanced induction variable; a prefetch would be useless.
            return None
    return Instruction(Opcode.PREFETCH, args=(address,))


# ----------------------------------------------------------------------
# Inner-site injection
# ----------------------------------------------------------------------
def inject_inner(
    function: Function,
    load: Instruction,
    load_slice: LoadSlice,
    loop: Loop,
    distance: int,
    minimal_clone: bool = True,
    site_label: Optional[str] = None,
) -> InjectionResult:
    """Inject a prefetch ``distance`` iterations ahead inside ``loop``.

    ``site_label`` (when given) is stamped on the emitted PREFETCH and on
    the delinquent load so lifecycle tracing can attribute events per
    injection site.
    """
    if distance < 1:
        return InjectionResult(False, "distance must be >= 1")
    if load_slice.has_call:
        return InjectionResult(False, "slice crosses a function call")
    indvar = _find_slice_iv(function, loop, load_slice)
    if indvar is None:
        return InjectionResult(False, "no induction variable in slice")
    names = _Names(function)

    advance, advanced = _emit_advanced_iv(indvar, distance, names)
    if not advance:
        return InjectionResult(False, "unsupported induction recurrence")
    clamp, index = _emit_clamp(function, loop, indvar, advanced, names)
    clones, mapping = _clone_slice(
        load_slice, {indvar.register: index}, names, minimal=minimal_clone
    )
    prefetch = _prefetch_from(load, mapping)
    if prefetch is None:
        return InjectionResult(False, "address independent of induction variable")

    block = _owning_block(function, load)
    if block is None:
        return InjectionResult(False, "load not found in function")
    if site_label is not None:
        prefetch.site = site_label
        load.site = site_label
    sequence = advance + clamp + clones + [prefetch]
    block.insert_before(load, sequence)
    return InjectionResult(
        True,
        added_instructions=len(sequence),
        prefetches_emitted=1,
        site="inner",
    )


# ----------------------------------------------------------------------
# Outer-site injection (§3.3, §3.5)
# ----------------------------------------------------------------------
def inject_outer(
    function: Function,
    load: Instruction,
    load_slice: LoadSlice,
    inner_loop: Loop,
    outer_loop: Loop,
    distance: int,
    sweep: int = 1,
    site_label: Optional[str] = None,
) -> InjectionResult:
    """Inject prefetches for future *outer* iterations in the inner
    loop's preheader.

    Following the paper's extension of the A&J search, when the slice
    terminates at the inner induction PHI the backward search *continues
    through the PHI's init value* into the outer loop, extending the
    slice until the outer induction variable(s) are reached.  The inner
    PHI is then pinned to its first ``sweep`` iteration values and every
    outer induction variable in the (extended) slice is advanced by
    ``distance``.
    """
    if distance < 1:
        return InjectionResult(False, "distance must be >= 1")
    if load_slice.has_call:
        return InjectionResult(False, "slice crosses a function call")

    inner_ivs = induction_variables(function, inner_loop)
    inner_iv = None
    inner_phi_ids = set()
    for candidate in inner_ivs:
        if id(candidate.phi) in {id(p) for p in load_slice.phis}:
            inner_iv = candidate
            inner_phi_ids.add(id(candidate.phi))
            break

    outer_ivs = {
        id(iv.phi): iv for iv in induction_variables(function, outer_loop)
    }

    # Extend the slice through the inner PHI's init chain (§3.5).
    extension: Optional[LoadSlice] = None
    init_value: Optional[Operand] = None
    if inner_iv is not None:
        init_value = inner_iv.init
        if isinstance(init_value, str):
            from repro.analysis.slices import extract_value_slice

            extension = extract_value_slice(function, init_value)

    # Collect every PHI the combined slice depends on; each must be the
    # inner induction variable or an outer induction variable.
    combined_phis = list(load_slice.phis)
    if extension is not None:
        combined_phis.extend(extension.phis)
    advanced_ivs = []
    seen = set()
    for phi in combined_phis:
        key = id(phi)
        if key in inner_phi_ids or key in seen:
            continue
        if key not in outer_ivs:
            return InjectionResult(False, "slice depends on non-induction PHI")
        seen.add(key)
        advanced_ivs.append(outer_ivs[key])
    if not advanced_ivs:
        return InjectionResult(False, "slice does not depend on outer loop")

    preheader_name = inner_loop.preheader()
    if preheader_name is None or preheader_name not in outer_loop.body:
        return InjectionResult(False, "no usable inner-loop preheader")
    preheader = function.block(preheader_name)

    names = _Names(function)
    sequence: list[Instruction] = []
    substitutions: dict[str, Operand] = {}
    for outer_iv in advanced_ivs:
        advance, advanced = _emit_advanced_iv(outer_iv, distance, names)
        if not advance:
            return InjectionResult(
                False, "unsupported outer induction recurrence"
            )
        clamp, outer_index = _emit_clamp(
            function, outer_loop, outer_iv, advanced, names
        )
        sequence.extend(advance)
        sequence.extend(clamp)
        substitutions[outer_iv.register] = outer_index

    # Clone the extension (the inner PHI's init chain) once.
    mapping: dict[str, Operand] = dict(substitutions)
    if extension is not None and extension.instructions:
        clones, mapping = _clone_slice(
            extension, substitutions, names, minimal=False
        )
        sequence.extend(clones)
    mapped_init: Optional[Operand] = None
    if init_value is not None:
        if isinstance(init_value, str):
            mapped_init = mapping.get(init_value, init_value)
        else:
            mapped_init = init_value

    prefetches = 0
    sweep = max(1, sweep)
    # When the load address is *linear* in the inner induction variable
    # (e.g. a bucket scan: addr = base + slot*8), consecutive inner
    # iterations often share a cache line; sweeping them would only emit
    # redundant prefetches and instruction overhead.  Step the sweep by
    # one cache line instead.  Indirect addresses (addr depends on a
    # loaded value) get step 1: every iteration may touch a new line.
    step = 1
    if inner_iv is not None:
        step = _sweep_line_step(function, load, load_slice, inner_iv)
    for k in range(0, sweep, step):
        iteration_map = dict(mapping)
        if inner_iv is not None:
            value, setup = _inner_iteration_value(
                inner_iv, mapped_init, k, names
            )
            sequence.extend(setup)
            iteration_map[inner_iv.register] = value
        elif k > 0:
            break  # no inner IV to sweep: one prefetch suffices
        clones, final_map = _clone_slice(
            load_slice, iteration_map, names, minimal=False
        )
        prefetch = _prefetch_from(load, final_map)
        if prefetch is None:
            return InjectionResult(
                False, "address independent of induction variables"
            )
        if site_label is not None:
            prefetch.site = site_label
        sequence.extend(clones)
        sequence.append(prefetch)
        prefetches += 1

    if site_label is not None:
        load.site = site_label
    preheader.insert_before_terminator(sequence)
    return InjectionResult(
        True,
        added_instructions=len(sequence),
        prefetches_emitted=prefetches,
        site="outer",
    )


def _sweep_line_step(
    function: Function,
    load: Instruction,
    load_slice: LoadSlice,
    inner_iv: InductionVariable,
) -> int:
    """Sweep stride (in iterations) so consecutive sweep prefetches land
    on distinct cache lines when the address is linear in the inner IV.

    Returns 1 (sweep every iteration) when the address depends on the IV
    through a load or any non-affine operation.
    """
    if inner_iv.step_op is not Opcode.ADD or not isinstance(inner_iv.step, int):
        return 1
    from repro.analysis.cfg import definitions_map

    definitions = definitions_map(function)
    address = load.args[0]
    if not isinstance(address, str):
        return 1
    gep = definitions.get(address)
    if gep is None or gep.op is not Opcode.GEP:
        return 1
    _, index, scale = gep.args
    # Walk the index chain: affine in the IV iff it only passes through
    # ADD/SUB whose other operand does not involve the IV.
    bytes_per_iteration: Optional[int] = None
    current = index
    while isinstance(current, str):
        if current == inner_iv.register:
            bytes_per_iteration = abs(inner_iv.step) * scale
            break
        defining = definitions.get(current)
        if defining is None or defining.op not in (Opcode.ADD, Opcode.SUB):
            return 1  # loads, shifts, etc.: treat as non-affine
        a, b = defining.args
        involves_a = _involves_register(a, inner_iv.register, definitions)
        involves_b = _involves_register(b, inner_iv.register, definitions)
        if involves_a and involves_b:
            return 1
        current = a if involves_a else b if involves_b else None
        if current is None:
            return 1  # IV not actually involved
    if bytes_per_iteration is None or bytes_per_iteration <= 0:
        return 1
    if bytes_per_iteration >= 64:
        return 1
    return max(1, 64 // bytes_per_iteration)


def _involves_register(
    operand, register: str, definitions: dict, depth: int = 8
) -> bool:
    if not isinstance(operand, str) or depth == 0:
        return False
    if operand == register:
        return True
    defining = definitions.get(operand)
    if defining is None or defining.op is Opcode.PHI:
        return False
    return any(
        _involves_register(o, register, definitions, depth - 1)
        for o in defining.register_operands()
    )


def _inner_iteration_value(
    inner_iv: InductionVariable,
    init: Optional[Operand],
    k: int,
    names: _Names,
) -> tuple[Operand, list[Instruction]]:
    """The inner induction variable's value on its k-th iteration,
    computed from its (possibly cloned) init value."""
    if init is None:
        init = inner_iv.init
    if k == 0:
        return init, []
    step = inner_iv.step
    if inner_iv.step_op is Opcode.ADD and isinstance(step, int):
        if isinstance(init, int):
            return init + k * step, []
        value = names.fresh("pf.iv")
        return value, [
            Instruction(Opcode.ADD, dst=value, args=(init, k * step))
        ]
    if inner_iv.step_op is Opcode.MUL and isinstance(step, int):
        if isinstance(init, int):
            return init * step**k, []
        value = names.fresh("pf.iv")
        return value, [
            Instruction(Opcode.MUL, dst=value, args=(init, step**k))
        ]
    return init, []  # unsupported recurrence: fall back to first iteration


def _owning_block(function: Function, instruction: Instruction):
    for block in function.blocks:
        if instruction in block.instructions:
            return block
    return None
