"""Compiler passes: A&J static baseline + APT-GET profile-guided injection."""

from repro.passes.ainsworth_jones import (
    DEFAULT_STATIC_DISTANCE,
    AinsworthJonesConfig,
    AinsworthJonesPass,
    PassReport,
)
from repro.passes.aptget_pass import AptGetPass, AptGetPassConfig
from repro.passes.cleanup import CleanupReport, cleanup_module, dead_code_elimination, local_cse
from repro.passes.inject import (
    InjectionResult,
    inject_inner,
    inject_outer,
)
from repro.passes.pipeline import (
    Builder,
    OptimizationOutcome,
    profile_and_optimize,
)

__all__ = [
    "AinsworthJonesConfig",
    "AinsworthJonesPass",
    "AptGetPass",
    "AptGetPassConfig",
    "Builder",
    "CleanupReport",
    "cleanup_module",
    "dead_code_elimination",
    "local_cse",
    "DEFAULT_STATIC_DISTANCE",
    "InjectionResult",
    "OptimizationOutcome",
    "PassReport",
    "inject_inner",
    "inject_outer",
    "profile_and_optimize",
]
