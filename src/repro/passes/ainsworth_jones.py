"""The Ainsworth & Jones (CGO'17) baseline pass.

Static indirect-load prefetching as the paper describes it (§2.1): scan
every function for loads inside loops whose address derives, through at
least one other load, from a loop induction variable; extract the
load-slice by backward DFS; clone it with the induction variable advanced
by a *fixed, compile-time* prefetch distance (``-DFETCHDIST`` style);
always inject in the innermost loop.  No profile input, no timeliness
model — exactly the static nature APT-GET improves on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.loops import find_loops
from repro.analysis.slices import find_indirect_loads
from repro.core.site import site_label
from repro.ir.nodes import Module
from repro.passes.cleanup import cleanup_module
from repro.passes.inject import InjectionResult, inject_inner

#: The static distance used throughout the paper's baseline comparisons.
DEFAULT_STATIC_DISTANCE = 32


@dataclass
class PassReport:
    """What a pass did to a module."""

    injected: list[dict] = field(default_factory=list)
    skipped: list[dict] = field(default_factory=list)
    added_instructions: int = 0

    @property
    def injection_count(self) -> int:
        return len(self.injected)

    def record(self, load_pc: int, function: str, result: InjectionResult) -> None:
        if result.success:
            self.injected.append(
                {
                    "load_pc": load_pc,
                    "function": function,
                    "site": result.site,
                    "added_instructions": result.added_instructions,
                    "prefetches": result.prefetches_emitted,
                }
            )
            self.added_instructions += result.added_instructions
        else:
            self.skipped.append(
                {
                    "load_pc": load_pc,
                    "function": function,
                    "reason": result.reason,
                }
            )


@dataclass(frozen=True)
class AinsworthJonesConfig:
    """Baseline knobs: one global static distance."""

    distance: int = DEFAULT_STATIC_DISTANCE
    require_indirect: bool = True
    #: Run CSE/DCE after injection (models the rest of the -O3 pipeline).
    cleanup: bool = True


class AinsworthJonesPass:
    """Static inner-loop prefetch injection with a fixed distance."""

    name = "ainsworth-jones"

    def __init__(self, config: AinsworthJonesConfig | None = None) -> None:
        self.config = config or AinsworthJonesConfig()

    def run(self, module: Module) -> PassReport:
        report = PassReport()
        for function in module.functions.values():
            loops = find_loops(function)
            if not loops:
                continue
            candidates = find_indirect_loads(
                function, loops, require_indirect=self.config.require_indirect
            )
            for load, load_slice, loop in candidates:
                result = inject_inner(
                    function,
                    load,
                    load_slice,
                    loop,
                    distance=self.config.distance,
                    minimal_clone=False,  # the baseline clones full slices
                    site_label=site_label(function.name, load.pc, "inner"),
                )
                report.record(load.pc, function.name, result)
        if self.config.cleanup:
            cleaned = cleanup_module(module)
            report.added_instructions -= cleaned.total
        module.finalize()
        return report
