"""Microbenchmark variants exercising the §3.5 generality claims:

* :class:`NonCanonicalMicrobenchmark` — the inner induction variable
  advances geometrically (``j *= 2``), the paper's example of a
  non-canonical recurrence the pass must still advance by ``step**d``;
* :class:`BreakConditionMicrobenchmark` — the inner loop has a second,
  data-dependent exit (``if (cond(v)) break;``), so the loop has
  multiple exit edges and injection must still find the counted bound.
"""

from __future__ import annotations

import random

from repro.ir.builder import IRBuilder
from repro.ir.nodes import Module
from repro.mem.address import AddressSpace
from repro.workloads.base import GUARD_ELEMS, Workload


class NonCanonicalMicrobenchmark(Workload):
    """``for o < OUTER: for (j = 1; j < SPAN; j *= 2): sum += T[B[o*SPAN + j]]``."""

    name = "micro-mul-iv"
    nested = True

    def __init__(
        self,
        outer: int = 4_000,
        span: int = 4_096,
        target_elems: int = 1 << 19,
        seed: int = 17,
    ) -> None:
        if span & (span - 1):
            raise ValueError("span must be a power of two")
        self.outer = outer
        self.span = span
        self.target_elems = target_elems
        self.seed = seed

    def _build(self) -> tuple[Module, AddressSpace]:
        rng = random.Random(self.seed)
        space = AddressSpace()
        # Sparse index plane: only the power-of-two offsets are read, so
        # keep B small: one slot per (outer, bit) pair.
        bits = self.span.bit_length() - 1
        b_seg = space.allocate(
            "B",
            [
                rng.randrange(self.target_elems)
                for _ in range((self.outer + GUARD_ELEMS) * bits)
            ],
            elem_size=8,
        )
        t_seg = space.allocate("T", self.target_elems, elem_size=8)

        module = Module(self.name)
        b = IRBuilder(module)
        b.function("main")
        entry, outer_h, inner_h, outer_latch, done = b.blocks(
            "entry", "outer_h", "inner_h", "outer_latch", "done"
        )
        b.at(entry)
        b.jmp(outer_h)

        b.at(outer_h)
        o = b.phi([(entry, 0)], name="o")
        acc_o = b.phi([(entry, 0)], name="acc.o")
        base = b.mul(o, bits, name="base")
        b.jmp(inner_h)

        b.at(inner_h)
        j = b.phi([(outer_h, 1)], name="j")
        bit = b.phi([(outer_h, 0)], name="bit")
        acc = b.phi([(outer_h, acc_o)], name="acc")
        slot = b.add(base, bit, name="slot")
        ba = b.gep(b_seg.base, slot, 8, name="ba")
        idx = b.load(ba, name="idx")
        ta = b.gep(t_seg.base, idx, 8, name="ta")
        value = b.load(ta, name="value")  # the delinquent load
        acc2 = b.add(acc, value, name="acc2")
        j2 = b.mul(j, 2, name="j2")  # non-canonical induction: j *= 2
        bit2 = b.add(bit, 1, name="bit2")
        b.add_incoming(j, inner_h, j2)
        b.add_incoming(bit, inner_h, bit2)
        b.add_incoming(acc, inner_h, acc2)
        more = b.lt(j2, self.span, name="more")
        b.br(more, inner_h, outer_latch)

        b.at(outer_latch)
        o2 = b.add(o, 1, name="o2")
        b.add_incoming(o, outer_latch, o2)
        b.add_incoming(acc_o, outer_latch, acc2)
        more_o = b.lt(o2, self.outer, name="more.o")
        b.br(more_o, outer_h, done)

        b.at(done)
        b.ret(acc2)
        module.finalize()
        return module, space


class BreakConditionMicrobenchmark(Workload):
    """Inner loop with a data-dependent early exit (§3.5's
    ``for(i:K){if(cond(i)) break;}`` support)."""

    name = "micro-break"
    nested = True

    def __init__(
        self,
        outer: int = 2_000,
        inner: int = 48,
        target_elems: int = 1 << 19,
        sentinel_period: int = 97,
        seed: int = 19,
    ) -> None:
        self.outer = outer
        self.inner = inner
        self.target_elems = target_elems
        self.sentinel_period = sentinel_period
        self.seed = seed

    def _build(self) -> tuple[Module, AddressSpace]:
        rng = random.Random(self.seed)
        half = self.target_elems // 2
        space = AddressSpace()
        bo = space.allocate(
            "BO",
            [rng.randrange(half) for _ in range(self.outer + GUARD_ELEMS)],
            elem_size=8,
        )
        bi = space.allocate(
            "BI",
            [rng.randrange(half) for _ in range(self.inner + GUARD_ELEMS)],
            elem_size=8,
        )
        target_values = [rng.randrange(1, 1 << 16) for _ in range(self.target_elems)]
        # Scatter sentinels so some inner loops break early.
        for index in range(0, self.target_elems, self.sentinel_period):
            target_values[index] = 0
        t_seg = space.allocate("T", target_values, elem_size=8)

        module = Module(self.name)
        b = IRBuilder(module)
        b.function("main")
        entry, outer_h, inner_h, inner_body, outer_latch, done = b.blocks(
            "entry", "outer_h", "inner_h", "inner_body", "outer_latch", "done"
        )
        b.at(entry)
        b.jmp(outer_h)

        b.at(outer_h)
        i = b.phi([(entry, 0)], name="i")
        acc_o = b.phi([(entry, 0)], name="acc.o")
        p_bo = b.gep(bo.base, i, 8, name="p.bo")
        b.jmp(inner_h)

        b.at(inner_h)
        j = b.phi([(outer_h, 0)], name="j")
        acc = b.phi([(outer_h, acc_o)], name="acc")
        bo_v = b.load(p_bo, name="bo.v")
        p_bi = b.gep(bi.base, j, 8, name="p.bi")
        bi_v = b.load(p_bi, name="bi.v")
        idx = b.add(bo_v, bi_v, name="idx")
        p_t = b.gep(t_seg.base, idx, 8, name="p.t")
        value = b.load(p_t, name="t.v")  # the delinquent load
        hit_sentinel = b.eq(value, 0, name="hit.sentinel")
        # Break: if value == 0, leave the inner loop immediately.
        b.br(hit_sentinel, outer_latch, inner_body)

        b.at(inner_body)
        acc2 = b.add(acc, value, name="acc2")
        j2 = b.add(j, 1, name="j2")
        b.add_incoming(j, inner_body, j2)
        b.add_incoming(acc, inner_body, acc2)
        more = b.lt(j2, self.inner, name="more")
        b.br(more, inner_h, outer_latch)

        b.at(outer_latch)
        acc3 = b.phi(
            [(inner_h, acc), (inner_body, acc2)], name="acc3"
        )
        i2 = b.add(i, 1, name="i2")
        b.add_incoming(i, outer_latch, i2)
        b.add_incoming(acc_o, outer_latch, acc3)
        more_i = b.lt(i2, self.outer, name="more.i")
        b.br(more_i, outer_h, done)

        b.at(done)
        b.ret(acc3)
        module.finalize()
        return module, space


class CallWorkMicrobenchmark(Workload):
    """Listing 1 with ``work()`` as a real function call (the paper's
    microbenchmark literally calls a work function): exercises CALL
    support through the whole profile -> analyze -> inject pipeline.
    """

    name = "micro-callwork"
    nested = True

    def __init__(
        self,
        inner: int = 64,
        outer: int = 600,
        work: int = 6,
        target_elems: int = 1 << 17,
        seed: int = 29,
    ) -> None:
        self.inner = inner
        self.outer = outer
        self.work = work
        self.target_elems = target_elems
        self.seed = seed

    def _build(self) -> tuple[Module, AddressSpace]:
        rng = random.Random(self.seed)
        half = self.target_elems // 2
        space = AddressSpace()
        bo = space.allocate(
            "BO",
            [rng.randrange(half) for _ in range(self.outer + GUARD_ELEMS)],
            elem_size=8,
        )
        bi = space.allocate(
            "BI",
            [rng.randrange(half) for _ in range(self.inner + GUARD_ELEMS)],
            elem_size=8,
        )
        t_seg = space.allocate(
            "T",
            [rng.randrange(1 << 10) for _ in range(self.target_elems)],
            elem_size=8,
        )

        module = Module(self.name)
        b = IRBuilder(module)

        # work(v): a fixed-cost transform of the loaded value.
        b.function("work", params=["v"])
        b.at(b.block("entry"))
        b.work(self.work)
        masked = b.and_("v", 0xFFFF, name="masked")
        b.ret(masked)

        b.function("main")
        entry, outer_h, inner_h, outer_latch, done = b.blocks(
            "entry", "outer_h", "inner_h", "outer_latch", "done"
        )
        b.at(entry)
        b.jmp(outer_h)
        b.at(outer_h)
        i = b.phi([(entry, 0)], name="iv1")
        acc_o = b.phi([(entry, 0)], name="acc.o")
        p_bo = b.gep(bo.base, i, 8, name="p.bo")
        b.jmp(inner_h)
        b.at(inner_h)
        j = b.phi([(outer_h, 0)], name="iv2")
        acc = b.phi([(outer_h, acc_o)], name="acc.i")
        bo_v = b.load(p_bo, name="bo.v")
        p_bi = b.gep(bi.base, j, 8, name="p.bi")
        bi_v = b.load(p_bi, name="bi.v")
        idx = b.add(bo_v, bi_v, name="idx")
        p_t = b.gep(t_seg.base, idx, 8, name="p.t")
        value = b.load(p_t, name="t.v")  # the delinquent load
        worked = b.call("work", [value], name="worked")
        acc2 = b.add(acc, worked, name="acc2")
        j2 = b.add(j, 1, name="iv2.next")
        b.add_incoming(j, inner_h, j2)
        b.add_incoming(acc, inner_h, acc2)
        cont = b.lt(j2, self.inner, name="inner.cont")
        b.br(cont, inner_h, outer_latch)
        b.at(outer_latch)
        i2 = b.add(i, 1, name="iv1.next")
        b.add_incoming(i, outer_latch, i2)
        b.add_incoming(acc_o, outer_latch, acc2)
        cont2 = b.lt(i2, self.outer, name="outer.cont")
        b.br(cont2, outer_h, done)
        b.at(done)
        b.ret(acc2)
        module.finalize()
        return module, space
