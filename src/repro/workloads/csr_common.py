"""Shared CSR allocation for graph workloads.

Vertex-state arrays use ``elem_size=64`` — one cache line per vertex —
modelling CRONO's multi-field per-vertex records; this keeps vertex-state
footprints at ``n x 64B`` so scaled graphs still exceed the scaled LLC.

Guard slack on ``row``/``col``/queues absorbs the unclamped over-indexing
of outer-loop prefetch slices (see workloads.base.GUARD_ELEMS).
"""

from __future__ import annotations

from repro.mem.address import AddressSpace, Segment
from repro.workloads.base import GUARD_ELEMS
from repro.workloads.graphs import CSRGraph

#: One cache line per vertex-state element.
VERTEX_ELEM = 64


def allocate_csr(space: AddressSpace, graph: CSRGraph) -> tuple[Segment, Segment]:
    """Allocate row/col with guard slack; guard row entries point at the
    (guarded) end of col so stale prefetch slices stay in bounds."""
    row_values = list(graph.row) + [graph.m] * GUARD_ELEMS
    col_values = list(graph.col) + [0] * GUARD_ELEMS
    row = space.allocate("row", row_values, elem_size=8)
    col = space.allocate("col", col_values, elem_size=8)
    return row, col


def allocate_vertex_state(
    space: AddressSpace, name: str, n: int, init: int = 0
) -> Segment:
    """One 64B line per vertex (+ guard)."""
    return space.allocate(
        name, [init] * (n + GUARD_ELEMS), elem_size=VERTEX_ELEM
    )


def allocate_worklist(space: AddressSpace, name: str, n: int) -> Segment:
    """Queue/stack sized n + guard (every vertex enters at most once)."""
    return space.allocate(name, [0] * (n + GUARD_ELEMS), elem_size=8)
