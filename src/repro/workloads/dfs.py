"""CRONO-style depth-first traversal with an explicit stack.

Same indirect pattern as BFS (``visited[col[j]]``) but LIFO work order,
which gives different temporal locality on the vertex-state array.
"""

from __future__ import annotations

from repro.ir.builder import IRBuilder
from repro.ir.nodes import Module
from repro.mem.address import AddressSpace
from repro.workloads.base import Workload
from repro.workloads.csr_common import (
    VERTEX_ELEM,
    allocate_csr,
    allocate_vertex_state,
    allocate_worklist,
)
from repro.workloads.graphs import CSRGraph, Dataset


class DFSWorkload(Workload):
    """Depth-first search from a source vertex (paper Table 3: DFS)."""

    name = "DFS"
    nested = True

    def __init__(self, dataset: Dataset, source: int = 0) -> None:
        self.dataset = dataset
        self.source = source
        self.name = f"DFS/{dataset.name}"

    def _build(self) -> tuple[Module, AddressSpace]:
        graph: CSRGraph = self.dataset.build()
        space = AddressSpace()
        row, col = allocate_csr(space, graph)
        visited = allocate_vertex_state(space, "visited", graph.n, init=0)
        stack = allocate_worklist(space, "stack", graph.n)
        visited.values[self.source] = 1
        stack.values[0] = self.source

        module = Module(self.name)
        b = IRBuilder(module)
        b.function("main")
        entry, outer_h, inner_h, outer_latch, done = b.blocks(
            "entry", "outer_h", "inner_h", "outer_latch", "done"
        )

        b.at(entry)
        b.jmp(outer_h)

        b.at(outer_h)
        sp = b.phi([(entry, 1)], name="sp")
        visits = b.phi([(entry, 0)], name="visits")
        sp2 = b.sub(sp, 1, name="sp2")
        sa = b.gep(stack.base, sp2, 8, name="sa")
        u = b.load(sa, name="u")
        ra = b.gep(row.base, u, 8, name="ra")
        rs = b.load(ra, name="rs")
        u1 = b.add(u, 1, name="u1")
        ra2 = b.gep(row.base, u1, 8, name="ra2")
        re = b.load(ra2, name="re")
        visits2 = b.add(visits, 1, name="visits2")
        has_neighbours = b.lt(rs, re, name="has.nb")
        b.br(has_neighbours, inner_h, outer_latch)

        b.at(inner_h)
        j = b.phi([(outer_h, rs)], name="j")
        sp_i = b.phi([(outer_h, sp2)], name="sp.i")
        ca = b.gep(col.base, j, 8, name="ca")
        v = b.load(ca, name="v")
        va = b.gep(visited.base, v, VERTEX_ELEM, name="va")
        vv = b.load(va, name="vv")  # the delinquent load
        seen = b.ne(vv, 0, name="seen")
        b.store(va, 1)
        slot = b.gep(stack.base, sp_i, 8, name="slot")
        b.store(slot, v)
        sp_next = b.add(sp_i, 1, name="sp.p1")
        sp2_i = b.select(seen, sp_i, sp_next, name="sp2.i")
        j2 = b.add(j, 1, name="j2")
        b.add_incoming(j, inner_h, j2)
        b.add_incoming(sp_i, inner_h, sp2_i)
        more = b.lt(j2, re, name="more")
        b.br(more, inner_h, outer_latch)

        b.at(outer_latch)
        sp3 = b.phi([(outer_h, sp2), (inner_h, sp2_i)], name="sp3")
        pending = b.gt(sp3, 0, name="pending")
        b.add_incoming(sp, outer_latch, sp3)
        b.add_incoming(visits, outer_latch, visits2)
        b.br(pending, outer_h, done)

        b.at(done)
        b.ret(visits2)

        module.finalize()
        return module, space
