"""Graph500 BFS on a Kronecker (R-MAT) graph.

Same traversal kernel as the CRONO BFS workload, run on the Graph500
generator's skewed-degree graph (average degree ~= edgefactor).  The
paper used scale 22, edgefactor 10; we use a scaled-down instance with
the same edgefactor (DESIGN.md scaling rule).
"""

from __future__ import annotations

from repro.ir.nodes import Module
from repro.mem.address import AddressSpace
from repro.workloads.base import Workload
from repro.workloads.bfs import BFSWorkload
from repro.workloads.graphs import CSRGraph, Dataset, rmat_graph


class _RMATDataset(Dataset):
    """Dataset shim: builds an R-MAT graph instead of a catalog graph."""

    def __init__(self, scale: int, edgefactor: int, seed: int) -> None:
        n = 1 << scale
        super().__init__(
            name=f"rmat-s{scale}-e{edgefactor}",
            vertices=n,
            avg_degree=float(edgefactor),
            kind="rmat",
            seed=seed,
            original_vertices=1 << 22,
            original_edges=(1 << 22) * 10,
        )
        object.__setattr__(self, "scale", scale)
        object.__setattr__(self, "edgefactor", edgefactor)

    def _cache_params(self) -> dict:
        params = super()._cache_params()
        params["rmat_scale"] = self.scale  # type: ignore[attr-defined]
        params["edgefactor"] = self.edgefactor  # type: ignore[attr-defined]
        return params

    def _generate(self) -> CSRGraph:
        return rmat_graph(
            self.scale,  # type: ignore[attr-defined]
            self.edgefactor,  # type: ignore[attr-defined]
            self.seed,
            name=self.name,
        )


class Graph500Workload(BFSWorkload):
    """Graph500 BFS (paper Table 3: Graph500, scale 22 / edgefactor 10)."""

    name = "Graph500"
    nested = True

    def __init__(self, scale: int = 14, edgefactor: int = 10, seed: int = 901) -> None:
        dataset = _RMATDataset(scale, edgefactor, seed)
        super().__init__(dataset, source=0)
        self.name = f"Graph500-s{scale}"

    def _build(self) -> tuple[Module, AddressSpace]:
        module, space = super()._build()
        module.name = self.name
        return module, space
