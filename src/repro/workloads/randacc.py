"""HPC Challenge RandomAccess (GUPS): random XOR updates to a huge table.

The HPCC original drives the table index with an LCG recurrence computed
in registers; because a prefetch slice must be re-computable from a loop
induction variable (the framework requirement shared with the paper's
LLVM pass), the index stream is materialized into an array — turning the
update into the canonical indirect pattern ``T[idx[i]] ^= f(idx[i])``
while preserving the uniformly random table access that defines GUPS.
The index array itself streams sequentially (hardware-prefetchable).
"""

from __future__ import annotations

import random

from repro.ir.builder import IRBuilder
from repro.ir.nodes import Module
from repro.mem.address import AddressSpace
from repro.workloads.base import GUARD_ELEMS, Workload


class RandomAccessWorkload(Workload):
    """GUPS table update (paper Table 3: RandAcc, 1 GiB table scaled)."""

    name = "randAccess"
    nested = False

    def __init__(
        self,
        table_elems: int = 1 << 20,  # 8 MiB of int64 (paper: 1 GiB, /128)
        updates: int = 120_000,
        seed: int = 701,
    ) -> None:
        self.table_elems = int(table_elems)
        self.updates = int(updates)
        self.seed = seed
        self.name = "randAccess"

    def _build(self) -> tuple[Module, AddressSpace]:
        rng = random.Random(self.seed)
        space = AddressSpace()
        indices = space.allocate(
            "indices",
            [
                rng.randrange(self.table_elems)
                for _ in range(self.updates + GUARD_ELEMS)
            ],
            elem_size=8,
        )
        table = space.allocate("table", self.table_elems, elem_size=8)

        module = Module(self.name)
        b = IRBuilder(module)
        b.function("main")
        entry, loop, done = b.blocks("entry", "loop", "done")

        b.at(entry)
        b.jmp(loop)

        b.at(loop)
        i = b.phi([(entry, 0)], name="i")
        ia = b.gep(indices.base, i, 8, name="ia")
        idx = b.load(ia, name="idx")
        ta = b.gep(table.base, idx, 8, name="ta")
        value = b.load(ta, name="value")  # the delinquent load
        mixed = b.xor(value, idx, name="mixed")
        b.store(ta, mixed)
        i2 = b.add(i, 1, name="i2")
        b.add_incoming(i, loop, i2)
        more = b.lt(i2, self.updates, name="more")
        b.br(more, loop, done)

        b.at(done)
        b.ret(i2)

        module.finalize()
        return module, space
