"""CRONO-style breadth-first search over a CSR graph.

The hot pattern: a frontier queue drives an outer loop; the inner loop
walks ``col[row[u] .. row[u+1])`` and performs the indirect, delinquent
load ``dist[col[j]]`` (one cache line per vertex).  Discovered vertices
are enqueued with the branch-free slot-write + select-advance idiom so
the loop nest stays a clean two-level structure for the passes.
"""

from __future__ import annotations

from repro.ir.builder import IRBuilder
from repro.ir.nodes import Module
from repro.mem.address import AddressSpace
from repro.workloads.base import Workload
from repro.workloads.csr_common import (
    VERTEX_ELEM,
    allocate_csr,
    allocate_vertex_state,
    allocate_worklist,
)
from repro.workloads.graphs import CSRGraph, Dataset


class BFSWorkload(Workload):
    """Breadth-first search from a source vertex (paper Table 3: BFS)."""

    name = "BFS"
    nested = True

    def __init__(self, dataset: Dataset, source: int = 0) -> None:
        self.dataset = dataset
        self.source = source
        self.name = f"BFS/{dataset.name}"

    def _build(self) -> tuple[Module, AddressSpace]:
        graph: CSRGraph = self.dataset.build()
        space = AddressSpace()
        row, col = allocate_csr(space, graph)
        dist = allocate_vertex_state(space, "dist", graph.n, init=-1)
        queue = allocate_worklist(space, "queue", graph.n)
        dist.values[self.source] = 0
        queue.values[0] = self.source

        module = Module(self.name)
        b = IRBuilder(module)
        b.function("main")
        entry, outer_h, inner_h, outer_latch, done = b.blocks(
            "entry", "outer_h", "inner_h", "outer_latch", "done"
        )

        b.at(entry)
        b.jmp(outer_h)

        b.at(outer_h)
        head = b.phi([(entry, 0)], name="head")
        tail = b.phi([(entry, 1)], name="tail")
        qa = b.gep(queue.base, head, 8, name="qa")
        u = b.load(qa, name="u")
        ra = b.gep(row.base, u, 8, name="ra")
        rs = b.load(ra, name="rs")
        u1 = b.add(u, 1, name="u1")
        ra2 = b.gep(row.base, u1, 8, name="ra2")
        re = b.load(ra2, name="re")
        da_u = b.gep(dist.base, u, VERTEX_ELEM, name="da.u")
        du = b.load(da_u, name="du")
        du1 = b.add(du, 1, name="du1")
        head2 = b.add(head, 1, name="head2")
        has_neighbours = b.lt(rs, re, name="has.nb")
        b.br(has_neighbours, inner_h, outer_latch)

        b.at(inner_h)
        j = b.phi([(outer_h, rs)], name="j")
        tail_i = b.phi([(outer_h, tail)], name="tail.i")
        ca = b.gep(col.base, j, 8, name="ca")
        v = b.load(ca, name="v")
        da = b.gep(dist.base, v, VERTEX_ELEM, name="da")
        dv = b.load(da, name="dv")  # the delinquent load
        visited = b.ge(dv, 0, name="visited")
        new_dist = b.select(visited, dv, du1, name="new.dist")
        b.store(da, new_dist)
        slot = b.gep(queue.base, tail_i, 8, name="slot")
        b.store(slot, v)
        tail2 = b.select(visited, tail_i, b.add(tail_i, 1, name="tail.p1"), name="tail2")
        j2 = b.add(j, 1, name="j2")
        b.add_incoming(j, inner_h, j2)
        b.add_incoming(tail_i, inner_h, tail2)
        more = b.lt(j2, re, name="more")
        b.br(more, inner_h, outer_latch)

        b.at(outer_latch)
        tail3 = b.phi([(outer_h, tail), (inner_h, tail2)], name="tail3")
        pending = b.lt(head2, tail3, name="pending")
        b.add_incoming(head, outer_latch, head2)
        b.add_incoming(tail, outer_latch, tail3)
        b.br(pending, outer_h, done)

        b.at(done)
        b.ret(head2)

        module.finalize()
        return module, space
