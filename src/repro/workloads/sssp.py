"""CRONO-style single-source shortest paths (Bellman-Ford rounds).

Each round relaxes every edge: ``dist[col[j]] = min(dist[col[j]],
dist[u] + w[j])``.  The indirect ``dist[col[j]]`` read-modify-write is the
delinquent access.  Relaxation is monotone, so the branch-free min-store
form is exactly equivalent to the conditional original.
"""

from __future__ import annotations

import random

from repro.ir.builder import IRBuilder
from repro.ir.nodes import Module
from repro.mem.address import AddressSpace
from repro.workloads.base import GUARD_ELEMS, Workload
from repro.workloads.csr_common import (
    VERTEX_ELEM,
    allocate_csr,
    allocate_vertex_state,
)
from repro.workloads.graphs import CSRGraph, Dataset

INFINITY = 1 << 30


class SSSPWorkload(Workload):
    """Bellman-Ford SSSP rounds (paper Table 3: SSSP)."""

    name = "SSSP"
    nested = True

    def __init__(self, dataset: Dataset, rounds: int = 2, source: int = 0) -> None:
        self.dataset = dataset
        self.rounds = max(1, int(rounds))
        self.source = source
        self.name = f"SSSP/{dataset.name}"

    def _build(self) -> tuple[Module, AddressSpace]:
        graph: CSRGraph = self.dataset.build()
        rng = random.Random(self.dataset.seed + 13)
        space = AddressSpace()
        row, col = allocate_csr(space, graph)
        weights = space.allocate(
            "weights",
            [rng.randrange(1, 64) for _ in range(graph.m + GUARD_ELEMS)],
            elem_size=8,
        )
        dist = allocate_vertex_state(space, "dist", graph.n, init=INFINITY)
        dist.values[self.source] = 0

        module = Module(self.name)
        b = IRBuilder(module)
        b.function("main")
        entry, r_h, u_h, inner_h, u_latch, r_latch, done = b.blocks(
            "entry", "r_h", "u_h", "inner_h", "u_latch", "r_latch", "done"
        )

        b.at(entry)
        b.jmp(r_h)

        b.at(r_h)
        rnd = b.phi([(entry, 0)], name="round")
        b.jmp(u_h)

        b.at(u_h)
        u = b.phi([(r_h, 0)], name="u")
        ra = b.gep(row.base, u, 8, name="ra")
        rs = b.load(ra, name="rs")
        u1 = b.add(u, 1, name="u1")
        ra2 = b.gep(row.base, u1, 8, name="ra2")
        re = b.load(ra2, name="re")
        da_u = b.gep(dist.base, u, VERTEX_ELEM, name="da.u")
        du = b.load(da_u, name="du")
        has_edges = b.lt(rs, re, name="has.edges")
        b.br(has_edges, inner_h, u_latch)

        b.at(inner_h)
        j = b.phi([(u_h, rs)], name="j")
        ca = b.gep(col.base, j, 8, name="ca")
        v = b.load(ca, name="v")
        wa = b.gep(weights.base, j, 8, name="wa")
        w = b.load(wa, name="w")
        candidate = b.add(du, w, name="cand")
        da = b.gep(dist.base, v, VERTEX_ELEM, name="da")
        dv = b.load(da, name="dv")  # the delinquent load
        relaxed = b.min(dv, candidate, name="relaxed")
        b.store(da, relaxed)
        j2 = b.add(j, 1, name="j2")
        b.add_incoming(j, inner_h, j2)
        more = b.lt(j2, re, name="more")
        b.br(more, inner_h, u_latch)

        b.at(u_latch)
        u2 = b.add(u, 1, name="u2")
        b.add_incoming(u, u_latch, u2)
        more_u = b.lt(u2, graph.n, name="more.u")
        b.br(more_u, u_h, r_latch)

        b.at(r_latch)
        rnd2 = b.add(rnd, 1, name="round2")
        b.add_incoming(rnd, r_latch, rnd2)
        more_r = b.lt(rnd2, self.rounds, name="more.r")
        b.br(more_r, r_h, done)

        b.at(done)
        b.ret(rnd2)

        module.finalize()
        return module, space
