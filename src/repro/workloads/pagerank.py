"""CRONO-style PageRank (pull variant, fixed-point arithmetic).

Per iteration, each vertex accumulates the contributions of its
in-neighbours: ``acc += contrib[col[j]]`` — the delinquent indirect load.
Ranks are 16.16 fixed-point integers (the memory access pattern, the
object of study, is identical to the floating-point original).
"""

from __future__ import annotations

import random

from repro.ir.builder import IRBuilder
from repro.ir.nodes import Module
from repro.mem.address import AddressSpace
from repro.workloads.base import Workload
from repro.workloads.csr_common import (
    VERTEX_ELEM,
    allocate_csr,
    allocate_vertex_state,
)
from repro.workloads.graphs import CSRGraph, Dataset

FIXED_ONE = 1 << 16


class PageRankWorkload(Workload):
    """PageRank power iterations (paper Table 3: PR)."""

    name = "PR"
    nested = True

    def __init__(self, dataset: Dataset, iterations: int = 1) -> None:
        self.dataset = dataset
        self.iterations = max(1, int(iterations))
        self.name = f"PR/{dataset.name}"

    def _build(self) -> tuple[Module, AddressSpace]:
        graph: CSRGraph = self.dataset.build()
        rng = random.Random(self.dataset.seed + 7)
        space = AddressSpace()
        row, col = allocate_csr(space, graph)
        contrib = allocate_vertex_state(space, "contrib", graph.n)
        for index in range(graph.n):
            contrib.values[index] = rng.randrange(FIXED_ONE)
        new_rank = space.allocate("new_rank", graph.n + 1, elem_size=8)

        module = Module(self.name)
        b = IRBuilder(module)
        b.function("main")
        entry, it_h, u_h, inner_h, u_latch, it_latch, done = b.blocks(
            "entry", "it_h", "u_h", "inner_h", "u_latch", "it_latch", "done"
        )

        b.at(entry)
        b.jmp(it_h)

        b.at(it_h)
        it = b.phi([(entry, 0)], name="it")
        b.jmp(u_h)

        b.at(u_h)
        u = b.phi([(it_h, 0)], name="u")
        ra = b.gep(row.base, u, 8, name="ra")
        rs = b.load(ra, name="rs")
        u1 = b.add(u, 1, name="u1")
        ra2 = b.gep(row.base, u1, 8, name="ra2")
        re = b.load(ra2, name="re")
        has_edges = b.lt(rs, re, name="has.edges")
        b.br(has_edges, inner_h, u_latch)

        b.at(inner_h)
        j = b.phi([(u_h, rs)], name="j")
        acc = b.phi([(u_h, 0)], name="acc")
        ca = b.gep(col.base, j, 8, name="ca")
        v = b.load(ca, name="v")
        pa = b.gep(contrib.base, v, VERTEX_ELEM, name="pa")
        pv = b.load(pa, name="pv")  # the delinquent load
        acc2 = b.add(acc, pv, name="acc2")
        j2 = b.add(j, 1, name="j2")
        b.add_incoming(j, inner_h, j2)
        b.add_incoming(acc, inner_h, acc2)
        more = b.lt(j2, re, name="more")
        b.br(more, inner_h, u_latch)

        b.at(u_latch)
        rank = b.phi([(u_h, 0), (inner_h, acc2)], name="rank")
        # new_rank[u] = (1-d) + d * acc, fixed point with d = 0.85.
        damped = b.mul(rank, 55705, name="damped")  # 0.85 * 2^16
        shifted = b.shr(damped, 16, name="shifted")
        base_rank = b.add(shifted, 9830, name="base.rank")  # 0.15 * 2^16
        na = b.gep(new_rank.base, u, 8, name="na")
        b.store(na, base_rank)
        u2 = b.add(u, 1, name="u2")
        b.add_incoming(u, u_latch, u2)
        more_u = b.lt(u2, graph.n, name="more.u")
        b.br(more_u, u_h, it_latch)

        b.at(it_latch)
        it2 = b.add(it, 1, name="it2")
        b.add_incoming(it, it_latch, it2)
        more_it = b.lt(it2, self.iterations, name="more.it")
        b.br(more_it, it_h, done)

        b.at(done)
        b.ret(it2)

        module.finalize()
        return module, space
