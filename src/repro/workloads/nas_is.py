"""NAS Parallel Benchmarks Integer Sort (IS) — the bucket-counting core.

The key ranking loop ``count[key[i]] += 1`` performs an indirect
read-modify-write into a bucket array sized well beyond the LLC while the
key array streams sequentially (covered by the hardware stride
prefetcher).  Problem classes mirror NPB's B and C, scaled to the
simulator (key count and bucket range scaled together).
"""

from __future__ import annotations

import random

from repro.ir.builder import IRBuilder
from repro.ir.nodes import Module
from repro.mem.address import AddressSpace
from repro.workloads.base import GUARD_ELEMS, Workload

#: Scaled problem classes: (keys, bucket_bits, iterations).
CLASSES = {
    "A": (40_000, 16, 2),
    "B": (60_000, 17, 2),
    "C": (90_000, 18, 2),
}


class IntegerSortWorkload(Workload):
    """NPB IS bucket sort (paper Table 3: IS, classes B and C)."""

    name = "IS"
    nested = True

    def __init__(self, klass: str = "B", seed: int = 501) -> None:
        if klass not in CLASSES:
            raise ValueError(f"unknown IS class {klass!r}")
        self.klass = klass
        self.keys, self.bucket_bits, self.iterations = CLASSES[klass]
        self.seed = seed
        self.name = f"IS-{klass}"

    def _build(self) -> tuple[Module, AddressSpace]:
        rng = random.Random(self.seed)
        buckets = 1 << self.bucket_bits
        space = AddressSpace()
        keys = space.allocate(
            "keys",
            [rng.randrange(buckets) for _ in range(self.keys + GUARD_ELEMS)],
            elem_size=8,
        )
        count = space.allocate("count", buckets + GUARD_ELEMS, elem_size=8)

        module = Module(self.name)
        b = IRBuilder(module)
        b.function("main")
        entry, it_h, key_h, it_latch, done = b.blocks(
            "entry", "it_h", "key_h", "it_latch", "done"
        )

        b.at(entry)
        b.jmp(it_h)

        b.at(it_h)
        it = b.phi([(entry, 0)], name="it")
        b.jmp(key_h)

        b.at(key_h)
        i = b.phi([(it_h, 0)], name="i")
        ka = b.gep(keys.base, i, 8, name="ka")
        k = b.load(ka, name="k")
        ba = b.gep(count.base, k, 8, name="ba")
        c = b.load(ba, name="c")  # the delinquent load
        c2 = b.add(c, 1, name="c2")
        b.store(ba, c2)
        i2 = b.add(i, 1, name="i2")
        b.add_incoming(i, key_h, i2)
        more = b.lt(i2, self.keys, name="more")
        b.br(more, key_h, it_latch)

        b.at(it_latch)
        it2 = b.add(it, 1, name="it2")
        b.add_incoming(it, it_latch, it2)
        more_it = b.lt(it2, self.iterations, name="more.it")
        b.br(more_it, it_h, done)

        b.at(done)
        b.ret(it2)

        module.finalize()
        return module, space
