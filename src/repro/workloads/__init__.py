"""Workloads: the paper's evaluation applications on the mini-IR substrate."""

from repro.workloads.base import GUARD_ELEMS, Workload
from repro.workloads.bc import BCWorkload
from repro.workloads.bfs import BFSWorkload
from repro.workloads.dfs import DFSWorkload
from repro.workloads.graph500 import Graph500Workload
from repro.workloads.graphs import (
    CATALOG,
    CSRGraph,
    Dataset,
    dataset,
    power_law_graph,
    rmat_graph,
    road_graph,
    synthetic_dataset,
    uniform_graph,
)
from repro.workloads.hashjoin import HashJoinWorkload
from repro.workloads.micro import COMPLEXITY_WORK, IndirectMicrobenchmark
from repro.workloads.micro_variants import (
    BreakConditionMicrobenchmark,
    CallWorkMicrobenchmark,
    NonCanonicalMicrobenchmark,
)
from repro.workloads.nas_cg import ConjugateGradientWorkload
from repro.workloads.nas_is import IntegerSortWorkload
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.randacc import RandomAccessWorkload
from repro.workloads.registry import (
    FULL_SUITE,
    SUITE,
    TINY_SUITE,
    make_workload,
    nested_suite_names,
    suite_names,
)
from repro.workloads.sssp import SSSPWorkload

__all__ = [
    "BCWorkload",
    "BreakConditionMicrobenchmark",
    "CallWorkMicrobenchmark",
    "BFSWorkload",
    "CATALOG",
    "COMPLEXITY_WORK",
    "CSRGraph",
    "ConjugateGradientWorkload",
    "DFSWorkload",
    "Dataset",
    "FULL_SUITE",
    "GUARD_ELEMS",
    "Graph500Workload",
    "HashJoinWorkload",
    "IndirectMicrobenchmark",
    "IntegerSortWorkload",
    "NonCanonicalMicrobenchmark",
    "PageRankWorkload",
    "RandomAccessWorkload",
    "SSSPWorkload",
    "SUITE",
    "TINY_SUITE",
    "Workload",
    "dataset",
    "make_workload",
    "nested_suite_names",
    "power_law_graph",
    "rmat_graph",
    "road_graph",
    "suite_names",
    "synthetic_dataset",
    "uniform_graph",
]
