"""Workload protocol: deterministic builders of (module, address space).

A workload is the reproduction's analog of one benchmark binary + its
input: calling :meth:`build` is 'recompiling' — it must be deterministic
so that PCs are stable between the profiling build and the optimized
build (the property AutoFDO relies on).
"""

from __future__ import annotations

from typing import Callable

from repro.ir.nodes import Module
from repro.ir.verifier import verify_module
from repro.mem.address import AddressSpace

#: Guard slack (in elements) appended to arrays that prefetch slices may
#: over-index when a loop bound is not statically clampable: slices never
#: fault on real hardware because the arrays they run past are mapped;
#: we reproduce that with explicit slack (see DESIGN.md).
GUARD_ELEMS = 1024


class Workload:
    """Base class; subclasses configure themselves in ``__init__`` and
    implement :meth:`_build`."""

    #: Registry/reporting name (e.g. "BFS").
    name: str = "workload"
    #: Entry function to run.
    entry: str = "main"
    #: Whether the hot loop nest is nested (Fig 10 membership).
    nested: bool = False

    def _build(self) -> tuple[Module, AddressSpace]:
        raise NotImplementedError

    def build(self) -> tuple[Module, AddressSpace]:
        """Deterministically build a fresh, verified, finalized module."""
        module, space = self._build()
        if not module.finalized:
            module.finalize()
        verify_module(module)
        return module, space

    @property
    def builder(self) -> Callable[[], tuple[Module, AddressSpace]]:
        """The builder callable the optimization pipeline consumes."""
        return self.build

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Workload {self.name}>"
