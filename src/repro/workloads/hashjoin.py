"""Hash-join probe kernel (Balkesen et al. style, paper Table 3: HJ2/HJ8).

The probe side hashes each tuple key and scans a bucket of ``epb``
(entries per bucket) candidate keys: the first bucket access is the
delinquent indirect load (a random line in a multi-MiB table); the bucket
scan is a tiny inner loop of 2 (HJ2) or 8 (HJ8) iterations — the paper's
flagship case for outer-loop prefetch injection.

Two hash functions mirror the paper's NPO / NPO_st variants:
``npo`` masks the key directly; ``npo_st`` uses a Fibonacci
multiply-shift (different bucket distribution, same footprint).
"""

from __future__ import annotations

import random

from repro.ir.builder import IRBuilder
from repro.ir.nodes import Module
from repro.mem.address import AddressSpace
from repro.workloads.base import GUARD_ELEMS, Workload

FIB_MULTIPLIER = 2654435761


class HashJoinWorkload(Workload):
    """Bucket-chained hash join probe (HJ2 = 2 entries/bucket, HJ8 = 8)."""

    name = "HJ"
    nested = True

    def __init__(
        self,
        entries_per_bucket: int = 8,
        algorithm: str = "NPO",
        table_entries: int = 1 << 19,  # 4 MiB of keys (paper: 970 MiB, scaled)
        probes: int = 60_000,
        seed: int = 801,
    ) -> None:
        if algorithm not in ("NPO", "NPO_st"):
            raise ValueError(f"unknown hash join algorithm {algorithm!r}")
        if table_entries % entries_per_bucket:
            raise ValueError("table_entries must divide by entries_per_bucket")
        self.epb = int(entries_per_bucket)
        self.algorithm = algorithm
        self.table_entries = int(table_entries)
        self.buckets = self.table_entries // self.epb
        if self.buckets & (self.buckets - 1):
            raise ValueError("bucket count must be a power of two")
        self.probes = int(probes)
        self.seed = seed
        self.name = f"HJ{self.epb}-{algorithm}"

    # ------------------------------------------------------------------
    def _hash(self, key: int) -> int:
        if self.algorithm == "NPO":
            return key & (self.buckets - 1)
        product = (key * FIB_MULTIPLIER) & 0xFFFFFFFF
        return (product >> 16) & (self.buckets - 1)

    def _build(self) -> tuple[Module, AddressSpace]:
        rng = random.Random(self.seed)
        space = AddressSpace()

        # Build side: fill each bucket with keys that hash to it.
        table_values = [0] * (self.table_entries + GUARD_ELEMS)
        fill = rng.randrange(1, 1 << 30)
        for bucket in range(0, self.buckets, 1):
            base = bucket * self.epb
            for slot in range(self.epb):
                table_values[base + slot] = (fill + bucket * 7 + slot) & ((1 << 30) - 1)
        probe_values = [
            rng.randrange(1, 1 << 30) for _ in range(self.probes + GUARD_ELEMS)
        ]
        table = space.allocate("hash_table", table_values, elem_size=8)
        probe = space.allocate("probe_keys", probe_values, elem_size=8)

        module = Module(self.name)
        b = IRBuilder(module)
        b.function("main")
        entry, outer_h, inner_h, outer_latch, done = b.blocks(
            "entry", "outer_h", "inner_h", "outer_latch", "done"
        )

        b.at(entry)
        b.jmp(outer_h)

        b.at(outer_h)
        i = b.phi([(entry, 0)], name="i")
        matches = b.phi([(entry, 0)], name="matches")
        pa = b.gep(probe.base, i, 8, name="pa")
        key = b.load(pa, name="key")
        if self.algorithm == "NPO":
            bucket = b.and_(key, self.buckets - 1, name="bucket")
        else:
            product = b.mul(key, FIB_MULTIPLIER, name="product")
            masked = b.and_(product, 0xFFFFFFFF, name="masked")
            shifted = b.shr(masked, 16, name="shifted")
            bucket = b.and_(shifted, self.buckets - 1, name="bucket")
        base = b.mul(bucket, self.epb, name="base")
        b.jmp(inner_h)

        b.at(inner_h)
        slot = b.phi([(outer_h, 0)], name="slot")
        match_i = b.phi([(outer_h, matches)], name="match.i")
        index = b.add(base, slot, name="index")
        ea = b.gep(table.base, index, 8, name="ea")
        candidate = b.load(ea, name="candidate")  # the delinquent load
        hit = b.eq(candidate, key, name="hit")
        match2 = b.add(match_i, hit, name="match2")
        slot2 = b.add(slot, 1, name="slot2")
        b.add_incoming(slot, inner_h, slot2)
        b.add_incoming(match_i, inner_h, match2)
        more = b.lt(slot2, self.epb, name="more")
        b.br(more, inner_h, outer_latch)

        b.at(outer_latch)
        i2 = b.add(i, 1, name="i2")
        b.add_incoming(i, outer_latch, i2)
        b.add_incoming(matches, outer_latch, match2)
        more_probes = b.lt(i2, self.probes, name="more.probes")
        b.br(more_probes, outer_h, done)

        b.at(done)
        b.ret(match2)

        module.finalize()
        return module, space
