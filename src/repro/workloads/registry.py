"""Workload registry: the paper's evaluation suite (Table 3) wired to
concrete inputs (Table 4 analogs + synthetic graphs).

Synthetic graph sizes follow the global 1/16-ish scaling (DESIGN.md):
the paper's '80K nodes, degree 8' becomes 16K/d8, '50K nodes, degree 8'
becomes 12K/d8 — in both cases per-vertex state stays at 2-4x the scaled
LLC, matching the original working-set : LLC ratio.
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.base import Workload
from repro.workloads.bc import BCWorkload
from repro.workloads.bfs import BFSWorkload
from repro.workloads.dfs import DFSWorkload
from repro.workloads.graph500 import Graph500Workload
from repro.workloads.graphs import dataset, synthetic_dataset
from repro.workloads.hashjoin import HashJoinWorkload
from repro.workloads.micro import IndirectMicrobenchmark
from repro.workloads.nas_cg import ConjugateGradientWorkload
from repro.workloads.nas_is import IntegerSortWorkload
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.randacc import RandomAccessWorkload
from repro.workloads.sssp import SSSPWorkload

WorkloadFactory = Callable[[], Workload]

#: The evaluation suite (Fig 5/6/7/8/9/11 x-axis).  Factories, so every
#: use gets a fresh, unshared workload object.
SUITE: dict[str, WorkloadFactory] = {
    "BFS-LBE": lambda: BFSWorkload(dataset("loc-Brightkite")),
    "BFS-16K-d8": lambda: BFSWorkload(synthetic_dataset(16_000, 8, seed=21)),
    "DFS-WS": lambda: DFSWorkload(dataset("web-Stanford")),
    "PR-WG": lambda: PageRankWorkload(dataset("web-Google")),
    "BC-12K-d8": lambda: BCWorkload(synthetic_dataset(12_000, 8, seed=22)),
    "SSSP-P2P": lambda: SSSPWorkload(dataset("p2p-Gnutella31")),
    "IS-B": lambda: IntegerSortWorkload("B"),
    "IS-C": lambda: IntegerSortWorkload("C"),
    "CG": lambda: ConjugateGradientWorkload(),
    "randAccess": lambda: RandomAccessWorkload(),
    "HJ2-NPO": lambda: HashJoinWorkload(2, "NPO"),
    "HJ2-NPO_st": lambda: HashJoinWorkload(2, "NPO_st"),
    "HJ8-NPO": lambda: HashJoinWorkload(8, "NPO"),
    "HJ8-NPO_st": lambda: HashJoinWorkload(8, "NPO_st"),
    "Graph500": lambda: Graph500Workload(),
}

#: Larger inputs for unhurried "full"-scale runs: ~2-3x the dynamic
#: instruction counts of SUITE, same names so results line up.
FULL_SUITE: dict[str, WorkloadFactory] = {
    "BFS-LBE": lambda: BFSWorkload(dataset("loc-Brightkite")),
    "BFS-16K-d8": lambda: BFSWorkload(synthetic_dataset(32_000, 8, seed=21)),
    "DFS-WS": lambda: DFSWorkload(dataset("web-Stanford")),
    "PR-WG": lambda: PageRankWorkload(dataset("web-Google"), iterations=2),
    "BC-12K-d8": lambda: BCWorkload(synthetic_dataset(24_000, 8, seed=22)),
    "SSSP-P2P": lambda: SSSPWorkload(dataset("p2p-Gnutella31"), rounds=4),
    "IS-B": lambda: IntegerSortWorkload("B"),
    "IS-C": lambda: IntegerSortWorkload("C"),
    "CG": lambda: ConjugateGradientWorkload(rows=24_000, iterations=2),
    "randAccess": lambda: RandomAccessWorkload(updates=300_000),
    "HJ2-NPO": lambda: HashJoinWorkload(2, "NPO", probes=150_000),
    "HJ2-NPO_st": lambda: HashJoinWorkload(2, "NPO_st", probes=150_000),
    "HJ8-NPO": lambda: HashJoinWorkload(8, "NPO", probes=150_000),
    "HJ8-NPO_st": lambda: HashJoinWorkload(8, "NPO_st", probes=150_000),
    "Graph500": lambda: Graph500Workload(scale=15),
}

#: Smaller inputs for fast unit/integration testing.
TINY_SUITE: dict[str, WorkloadFactory] = {
    "BFS-tiny": lambda: BFSWorkload(synthetic_dataset(2_000, 4, seed=31)),
    "HJ8-tiny": lambda: HashJoinWorkload(
        8, "NPO", table_entries=1 << 15, probes=4_000
    ),
    "IS-tiny": lambda: IntegerSortWorkload("A"),
    "randAccess-tiny": lambda: RandomAccessWorkload(
        table_elems=1 << 16, updates=8_000
    ),
    "micro-tiny": lambda: IndirectMicrobenchmark(
        inner=64, total_iterations=16_000, target_elems=1 << 17
    ),
}


def suite_names() -> list[str]:
    return list(SUITE)


def make_workload(name: str, scale: str = "small") -> Workload:
    """Instantiate a fresh workload; ``scale`` picks the input tier
    ("full" falls back to SUITE sizes for names without a FULL variant).
    """
    if scale == "full":
        factory = FULL_SUITE.get(name) or SUITE.get(name) or TINY_SUITE.get(name)
    else:
        factory = SUITE.get(name) or TINY_SUITE.get(name)
    if factory is None:
        raise KeyError(
            f"unknown workload {name!r}; available: "
            f"{sorted(set(SUITE) | set(TINY_SUITE))}"
        )
    return factory()


def nested_suite_names() -> list[str]:
    """Workloads with nested hot loops (Fig 10 membership)."""
    return [name for name in SUITE if make_workload(name).nested]
