"""Graph substrate: CSR graphs, synthetic generators, and the dataset
catalog standing in for SNAP (paper Table 4).

SNAP downloads are unavailable offline, so every catalog entry is a
synthetic graph *matched by category*: web graphs get power-law degrees,
road networks get a high-locality low-degree grid, p2p/social get their
characteristic degree shapes.  Sizes are the originals scaled down so
edge counts stay simulable (~<= 130k), preserving average degree — the
quantity that drives inner-loop trip counts and hence the paper's
injection-site results.  The simulated LLC is scaled correspondingly
(see MachineConfig), keeping the working-set : LLC ratio.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable


@dataclass
class CSRGraph:
    """Compressed-sparse-row directed graph."""

    name: str
    n: int
    row: list[int]  # n+1 offsets
    col: list[int]  # m destinations

    @property
    def m(self) -> int:
        return len(self.col)

    @property
    def avg_degree(self) -> float:
        return self.m / self.n if self.n else 0.0

    def out_degree(self, u: int) -> int:
        return self.row[u + 1] - self.row[u]


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def uniform_graph(n: int, avg_degree: float, seed: int, name: str = "uniform") -> CSRGraph:
    """Each vertex gets ~avg_degree uniformly random out-neighbours."""
    rng = random.Random(seed)
    row = [0]
    col: list[int] = []
    target_m = int(n * avg_degree)
    for u in range(n):
        remaining_vertices = n - u
        remaining_edges = target_m - len(col)
        degree = max(0, round(remaining_edges / remaining_vertices))
        for _ in range(degree):
            col.append(rng.randrange(n))
        row.append(len(col))
    return CSRGraph(name=name, n=n, row=row, col=col)


def power_law_graph(
    n: int, avg_degree: float, seed: int, name: str = "power", alpha: float = 2.2
) -> CSRGraph:
    """Power-law out-degrees (web/social shape), random destinations."""
    rng = random.Random(seed)
    # Sample degrees ~ pareto, then rescale to hit the average.
    raw = [rng.paretovariate(alpha - 1.0) for _ in range(n)]
    scale = avg_degree * n / sum(raw)
    degrees = [max(1, min(n - 1, round(d * scale))) for d in raw]
    row = [0]
    col: list[int] = []
    for degree in degrees:
        for _ in range(degree):
            col.append(rng.randrange(n))
        row.append(len(col))
    return CSRGraph(name=name, n=n, row=row, col=col)


def road_graph(
    n: int,
    seed: int,
    name: str = "road",
    avg_degree: float = 1.4,
    shortcut_fraction: float = 0.02,
) -> CSRGraph:
    """Grid-like road network: low degree, high vertex-id locality.

    Right-edges are always kept (so the graph stays connected from
    vertex 0); down-edges are thinned to hit the requested average
    degree, matching SNAP roadNet degree statistics.
    """
    rng = random.Random(seed)
    width = max(2, int(n**0.5))
    down_probability = min(1.0, max(0.0, avg_degree - 1.0 - shortcut_fraction))
    row = [0]
    col: list[int] = []
    for u in range(n):
        neighbours = []
        if (u + 1) % width and u + 1 < n:
            neighbours.append(u + 1)
        if u + width < n and rng.random() < down_probability:
            neighbours.append(u + width)
        if rng.random() < shortcut_fraction:
            neighbours.append(rng.randrange(n))
        col.extend(neighbours)
        row.append(len(col))
    return CSRGraph(name=name, n=n, row=row, col=col)


def rmat_graph(
    scale: int,
    edgefactor: int,
    seed: int,
    name: str = "rmat",
    probabilities: tuple = (0.57, 0.19, 0.19, 0.05),
) -> CSRGraph:
    """Graph500-style Kronecker/R-MAT generator."""
    rng = random.Random(seed)
    n = 1 << scale
    m = n * edgefactor
    a, b, c, _ = probabilities
    buckets: list[list[int]] = [[] for _ in range(n)]
    for _ in range(m):
        u = v = 0
        half = n >> 1
        while half:
            r = rng.random()
            if r < a:
                pass
            elif r < a + b:
                v += half
            elif r < a + b + c:
                u += half
            else:
                u += half
                v += half
            half >>= 1
        buckets[u].append(v)
    row = [0]
    col: list[int] = []
    for u in range(n):
        col.extend(buckets[u])
        row.append(len(col))
    return CSRGraph(name=name, n=n, row=row, col=col)


# ----------------------------------------------------------------------
# Content-addressed memoization of graph generation
# ----------------------------------------------------------------------
#: Process-wide store for generated graphs.  Lazily constructed (and
#: imported lazily: repro.service imports the workload registry, so a
#: top-level import here would be circular).  Suite runs build the same
#: (workload, scale, seed) graph once per job otherwise — the R-MAT
#: generator alone is a measurable fraction of a cold suite pass.
_GRAPH_STORE = None


def graph_store():
    """The shared in-process graph store (a ``repro.service`` MemoryStore)."""
    global _GRAPH_STORE
    if _GRAPH_STORE is None:
        from repro.service.store import MemoryStore

        _GRAPH_STORE = MemoryStore()
    return _GRAPH_STORE


def clear_graph_cache() -> None:
    """Drop every memoized graph (test isolation aid)."""
    global _GRAPH_STORE
    _GRAPH_STORE = None


# ----------------------------------------------------------------------
# Dataset catalog (Table 4 analog)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Dataset:
    """One named input: a scaled synthetic stand-in for a SNAP graph."""

    name: str
    vertices: int
    avg_degree: float
    kind: str  # "power" | "uniform" | "road"
    seed: int
    original_vertices: int = 0
    original_edges: int = 0

    def _cache_params(self) -> dict:
        """The generator-identity parameters folded into the cache key.
        Subclasses adding generator knobs must extend this."""
        return {
            "generator": self.kind,
            "seed": self.seed,
            "avg_degree": f"{self.avg_degree:g}",
        }

    def _generate(self) -> CSRGraph:
        """Run the actual generator (subclass hook; no caching)."""
        if self.kind == "power":
            return power_law_graph(
                self.vertices, self.avg_degree, self.seed, name=self.name
            )
        if self.kind == "uniform":
            return uniform_graph(
                self.vertices, self.avg_degree, self.seed, name=self.name
            )
        if self.kind == "road":
            return road_graph(
                self.vertices,
                self.seed,
                name=self.name,
                avg_degree=self.avg_degree,
            )
        raise ValueError(f"unknown dataset kind {self.kind!r}")

    def build(self) -> CSRGraph:
        """The dataset's graph, memoized through the content-addressed
        ``repro.service`` store keyed by (workload name, size, seed and
        the other generator parameters).

        A cache hit decodes a fresh :class:`CSRGraph` from the stored
        JSON, so callers can never alias each other's row/col lists; a
        miss returns the generated object directly and stores a
        serialized copy (workload builders copy row/col into address
        -space segments, never mutate the graph in place).
        """
        from repro.service.store import CacheKey

        store = graph_store()
        key = CacheKey.make(
            kind="graph",
            workload=self.name,
            scale=f"n{self.vertices}",
            config="graph-generator-v1",
            **self._cache_params(),
        )
        payload = store.get(key)
        if payload is not None:
            store.metrics.inc("graph_cache.hits")
            return CSRGraph(
                name=payload["name"],
                n=payload["n"],
                row=payload["row"],
                col=payload["col"],
            )
        graph = self._generate()
        store.put(
            key,
            {
                "name": graph.name,
                "n": graph.n,
                "row": graph.row,
                "col": graph.col,
            },
        )
        store.metrics.inc("graph_cache.misses")
        return graph


#: Table 4 of the paper, scaled (original sizes retained as metadata).
CATALOG: dict[str, Dataset] = {
    "web-Google": Dataset("web-Google", 20_000, 5.8, "power", 101, 875_713, 5_105_039),
    "p2p-Gnutella31": Dataset(
        "p2p-Gnutella31", 20_000, 2.4, "uniform", 102, 62_586, 147_892
    ),
    "roadNet-CA": Dataset("roadNet-CA", 60_000, 1.4, "road", 103, 1_965_206, 2_766_607),
    "roadNet-PA": Dataset("roadNet-PA", 42_000, 1.4, "road", 104, 1_088_092, 1_541_898),
    "loc-Brightkite": Dataset(
        "loc-Brightkite", 16_000, 3.7, "power", 105, 58_228, 214_078
    ),
    "web-BerkStan": Dataset(
        "web-BerkStan", 10_000, 11.1, "power", 106, 685_230, 7_600_595
    ),
    "web-NotreDame": Dataset(
        "web-NotreDame", 22_000, 4.6, "power", 107, 325_729, 1_497_134
    ),
    "web-Stanford": Dataset(
        "web-Stanford", 13_000, 8.2, "power", 108, 281_903, 2_312_497
    ),
}


def synthetic_dataset(vertices: int, degree: float, seed: int = 42) -> Dataset:
    """The paper's synthetic inputs ('80K nodes, degree 8' etc.)."""
    return Dataset(
        name=f"synth-{vertices // 1000}K-d{degree:g}",
        vertices=vertices,
        avg_degree=degree,
        kind="uniform",
        seed=seed,
    )


def dataset(name: str) -> Dataset:
    try:
        return CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(CATALOG)}"
        ) from None
