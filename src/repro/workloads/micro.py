"""The paper's Listing-1 microbenchmark: a two-level loop nest with an
indirect access ``T[BO[i] + BI[j]]`` and a tunable ``work()`` function.

``INNER`` controls the inner trip count (Fig 2), ``COMPLEXITY`` the work
function cost (Fig 1).  The generated IR matches Listing 3's shape: the
outer GEP lives in the outer block, the loads in the inner block, so the
load-slice terminates at both induction PHIs.
"""

from __future__ import annotations

import random

from repro.ir.builder import IRBuilder
from repro.ir.nodes import Module
from repro.mem.address import AddressSpace
from repro.workloads.base import GUARD_ELEMS, Workload

#: Work-function cost (instructions per inner iteration) per complexity
#: class; chosen so the Eq-1 optimal distances spread over ~4..32 like
#: the paper's 32/16/4 (Fig 1).
COMPLEXITY_WORK = {"low": 0, "medium": 24, "high": 90}

#: Default total inner iterations across the whole run (keeps simulation
#: time flat while INNER varies).
DEFAULT_TOTAL_ITERATIONS = 120_000

#: Elements in the target array T (8B each -> 8 MiB >> LLC).
DEFAULT_TARGET_ELEMS = 1 << 20


class IndirectMicrobenchmark(Workload):
    """Listing 1: ``for i < OUTER: for j < INNER: sum += T[BO[i]+BI[j]]; work()``."""

    name = "micro"
    nested = True

    def __init__(
        self,
        inner: int = 256,
        outer: int | None = None,
        complexity: str = "low",
        work: int | None = None,
        target_elems: int = DEFAULT_TARGET_ELEMS,
        total_iterations: int = DEFAULT_TOTAL_ITERATIONS,
        seed: int = 11,
    ) -> None:
        if complexity not in COMPLEXITY_WORK:
            raise ValueError(f"unknown complexity {complexity!r}")
        self.inner = int(inner)
        self.outer = (
            int(outer)
            if outer is not None
            else max(2, total_iterations // self.inner)
        )
        self.complexity = complexity
        self.work = COMPLEXITY_WORK[complexity] if work is None else int(work)
        self.target_elems = int(target_elems)
        self.seed = seed
        self.name = f"micro-{complexity}-i{self.inner}"

    # ------------------------------------------------------------------
    def _build(self) -> tuple[Module, AddressSpace]:
        rng = random.Random(self.seed)
        half = self.target_elems // 2
        space = AddressSpace()
        bo = space.allocate(
            "BO",
            [rng.randrange(half) for _ in range(self.outer + GUARD_ELEMS)],
            elem_size=8,
        )
        bi = space.allocate(
            "BI",
            [rng.randrange(half) for _ in range(self.inner + GUARD_ELEMS)],
            elem_size=8,
        )
        target = space.allocate("T", self.target_elems, elem_size=8)
        # Give T nonzero contents so checksums are meaningful.
        values = target.values
        for index in range(0, len(values), 97):
            values[index] = index & 0xFFFF

        module = Module(self.name)
        b = IRBuilder(module)
        b.function("main")
        entry, outer_h, inner_h, outer_latch, done = b.blocks(
            "entry", "outer_h", "inner_h", "outer_latch", "done"
        )

        b.at(entry)
        b.jmp(outer_h)

        b.at(outer_h)
        i = b.phi([(entry, 0)], name="iv1")
        acc_outer = b.phi([(entry, 0)], name="acc.o")
        p_bo = b.gep(bo.base, i, 8, name="p.bo")
        b.jmp(inner_h)

        b.at(inner_h)
        j = b.phi([(outer_h, 0)], name="iv2")
        acc = b.phi([(outer_h, acc_outer)], name="acc.i")
        bo_v = b.load(p_bo, name="bo.v")
        p_bi = b.gep(bi.base, j, 8, name="p.bi")
        bi_v = b.load(p_bi, name="bi.v")
        idx = b.add(bo_v, bi_v, name="idx")
        p_t = b.gep(target.base, idx, 8, name="p.t")
        value = b.load(p_t, name="t.v")  # the delinquent load
        if self.work:
            b.work(self.work)
        acc2 = b.add(acc, value, name="acc2")
        j2 = b.add(j, 1, name="iv2.next")
        b.add_incoming(j, inner_h, j2)
        b.add_incoming(acc, inner_h, acc2)
        cont = b.lt(j2, self.inner, name="inner.cont")
        b.br(cont, inner_h, outer_latch)

        b.at(outer_latch)
        i2 = b.add(i, 1, name="iv1.next")
        b.add_incoming(i, outer_latch, i2)
        b.add_incoming(acc_outer, outer_latch, acc2)
        cont2 = b.lt(i2, self.outer, name="outer.cont")
        b.br(cont2, outer_h, done)

        b.at(done)
        b.ret(acc2)

        module.finalize()
        return module, space

    # ------------------------------------------------------------------
    def delinquent_load_pc(self, module: Module) -> int:
        """PC of the ``T[...]`` load (ground truth for tests)."""
        function = module.function("main")
        inner = function.block("inner_h")
        loads = [
            inst
            for inst in inner.instructions
            if inst.op.name == "LOAD"
        ]
        return loads[-1].pc
