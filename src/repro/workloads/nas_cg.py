"""NAS Parallel Benchmarks Conjugate Gradient (CG) — the SpMV core.

CG's time goes into ``y = A x`` over a random sparse matrix in CSR
format: per non-zero, ``acc += a[j] * x[col[j]]`` — a streaming read of
``a``/``col`` plus the delinquent indirect gather ``x[col[j]]`` (one
cache line per vector element, as NPB's double-precision rows effectively
are).  Fixed-point arithmetic replaces floating point; access pattern
identical.
"""

from __future__ import annotations

import random

from repro.ir.builder import IRBuilder
from repro.ir.nodes import Module
from repro.mem.address import AddressSpace
from repro.workloads.base import GUARD_ELEMS, Workload
from repro.workloads.csr_common import VERTEX_ELEM, allocate_vertex_state


class ConjugateGradientWorkload(Workload):
    """NPB CG sparse matrix-vector kernel (paper Table 3: CG)."""

    name = "CG"
    nested = True

    def __init__(
        self,
        rows: int = 16_000,
        nnz_per_row: int = 8,
        iterations: int = 1,
        seed: int = 601,
    ) -> None:
        self.rows = int(rows)
        self.nnz_per_row = int(nnz_per_row)
        self.iterations = max(1, int(iterations))
        self.seed = seed
        self.name = f"CG-n{rows}"

    def _build(self) -> tuple[Module, AddressSpace]:
        rng = random.Random(self.seed)
        n = self.rows
        space = AddressSpace()
        row_values = [0]
        col_values: list[int] = []
        for _ in range(n):
            for _ in range(self.nnz_per_row):
                col_values.append(rng.randrange(n))
            row_values.append(len(col_values))
        row_values.extend([len(col_values)] * GUARD_ELEMS)
        nnz = len(col_values)
        col_values.extend([0] * GUARD_ELEMS)
        row = space.allocate("row", row_values, elem_size=8)
        col = space.allocate("col", col_values, elem_size=8)
        a = space.allocate(
            "a",
            [rng.randrange(1, 1 << 12) for _ in range(nnz + GUARD_ELEMS)],
            elem_size=8,
        )
        x = allocate_vertex_state(space, "x", n)
        for index in range(n):
            x.values[index] = rng.randrange(1 << 12)
        y = space.allocate("y", n + 1, elem_size=8)

        module = Module(self.name)
        b = IRBuilder(module)
        b.function("main")
        entry, it_h, r_h, inner_h, r_latch, it_latch, done = b.blocks(
            "entry", "it_h", "r_h", "inner_h", "r_latch", "it_latch", "done"
        )

        b.at(entry)
        b.jmp(it_h)

        b.at(it_h)
        it = b.phi([(entry, 0)], name="it")
        b.jmp(r_h)

        b.at(r_h)
        u = b.phi([(it_h, 0)], name="u")
        ra = b.gep(row.base, u, 8, name="ra")
        rs = b.load(ra, name="rs")
        u1 = b.add(u, 1, name="u1")
        ra2 = b.gep(row.base, u1, 8, name="ra2")
        re = b.load(ra2, name="re")
        has_nnz = b.lt(rs, re, name="has.nnz")
        b.br(has_nnz, inner_h, r_latch)

        b.at(inner_h)
        j = b.phi([(r_h, rs)], name="j")
        acc = b.phi([(r_h, 0)], name="acc")
        ca = b.gep(col.base, j, 8, name="ca")
        v = b.load(ca, name="v")
        xa = b.gep(x.base, v, VERTEX_ELEM, name="xa")
        xv = b.load(xa, name="xv")  # the delinquent gather
        aa = b.gep(a.base, j, 8, name="aa")
        av = b.load(aa, name="av")
        prod = b.mul(av, xv, name="prod")
        acc2 = b.add(acc, prod, name="acc2")
        j2 = b.add(j, 1, name="j2")
        b.add_incoming(j, inner_h, j2)
        b.add_incoming(acc, inner_h, acc2)
        more = b.lt(j2, re, name="more")
        b.br(more, inner_h, r_latch)

        b.at(r_latch)
        dot = b.phi([(r_h, 0), (inner_h, acc2)], name="dot")
        ya = b.gep(y.base, u, 8, name="ya")
        b.store(ya, dot)
        u2 = b.add(u, 1, name="u2")
        b.add_incoming(u, r_latch, u2)
        more_u = b.lt(u2, n, name="more.u")
        b.br(more_u, r_h, it_latch)

        b.at(it_latch)
        it2 = b.add(it, 1, name="it2")
        b.add_incoming(it, it_latch, it2)
        more_it = b.lt(it2, self.iterations, name="more.it")
        b.br(more_it, it_h, done)

        b.at(done)
        b.ret(it2)

        module.finalize()
        return module, space
