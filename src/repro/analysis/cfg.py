"""Control-flow-graph utilities: orders, dominators, def-use maps."""

from __future__ import annotations

from typing import Optional

from repro.ir.nodes import Function, Instruction


def successors_map(function: Function) -> dict[str, tuple]:
    return {block.name: block.successors() for block in function.blocks}


def predecessors_map(function: Function) -> dict[str, list[str]]:
    return function.predecessors()


def reverse_postorder(function: Function) -> list[str]:
    """Block names in reverse postorder from the entry (unreachable blocks
    are excluded)."""
    successors = successors_map(function)
    visited: set[str] = set()
    postorder: list[str] = []

    def visit(name: str) -> None:
        stack = [(name, iter(successors[name]))]
        visited.add(name)
        while stack:
            current, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, iter(successors[nxt])))
                    advanced = True
                    break
            if not advanced:
                postorder.append(current)
                stack.pop()

    visit(function.entry.name)
    return list(reversed(postorder))


def immediate_dominators(function: Function) -> dict[str, Optional[str]]:
    """Cooper-Harvey-Kennedy iterative dominator computation.

    Returns a map ``block -> immediate dominator`` with the entry mapping
    to ``None``.  Unreachable blocks are absent.
    """
    order = reverse_postorder(function)
    index = {name: i for i, name in enumerate(order)}
    preds = predecessors_map(function)
    entry = function.entry.name

    idom: dict[str, Optional[str]] = {entry: entry}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for name in order:
            if name == entry:
                continue
            candidates = [p for p in preds[name] if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom.get(name) != new_idom:
                idom[name] = new_idom
                changed = True

    result: dict[str, Optional[str]] = {}
    for name in order:
        result[name] = None if name == entry else idom[name]
    return result


def dominates(
    idom: dict[str, Optional[str]], dominator: str, block: str
) -> bool:
    """True iff ``dominator`` dominates ``block`` under the idom tree."""
    current: Optional[str] = block
    while current is not None:
        if current == dominator:
            return True
        current = idom.get(current)
    return False


def definitions_map(function: Function) -> dict[str, Instruction]:
    """Map register name -> its defining instruction (SSA assumption)."""
    result: dict[str, Instruction] = {}
    for instruction in function.instructions():
        if instruction.dst is not None:
            result[instruction.dst] = instruction
    return result


def block_of_map(function: Function) -> dict[int, str]:
    """Map ``id(instruction)`` -> owning block name."""
    result: dict[int, str] = {}
    for block in function.blocks:
        for instruction in block.instructions:
            result[id(instruction)] = block.name
    return result
