"""Natural-loop detection, nesting, induction variables, and loop bounds.

The injection passes need, per loop:

* the header block and the back-edge ("latch") branches — their PCs are
  what shows up in LBR samples as the repeating loop branch;
* the induction PHI(s) and their step operation (canonical ``i += c`` as
  well as non-canonical ``i *= c``, per paper §3.5);
* the loop bound operand, extracted from the exiting compare, used to
  clamp prefetch indices (Listing 4's ``min(INNER, iv+dist)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.cfg import (
    definitions_map,
    dominates,
    immediate_dominators,
    predecessors_map,
    successors_map,
)
from repro.ir.nodes import Function, Instruction, Operand
from repro.ir.opcodes import Opcode


@dataclass
class InductionVariable:
    """A loop-carried PHI updated by a simple recurrence each iteration."""

    phi: Instruction  # the PHI instruction in the loop header
    init: Operand  # value entering from outside the loop
    step_op: Opcode  # ADD, SUB, or MUL
    step: Operand  # per-iteration increment/factor
    update: Instruction  # the instruction computing the next value

    @property
    def register(self) -> str:
        assert self.phi.dst is not None
        return self.phi.dst

    @property
    def is_canonical(self) -> bool:
        return self.step_op is Opcode.ADD and self.step == 1


@dataclass
class Loop:
    """A natural loop: header plus the blocks of its body."""

    header: str
    body: set[str] = field(default_factory=set)
    latches: list[str] = field(default_factory=list)
    parent: Optional["Loop"] = None
    children: list["Loop"] = field(default_factory=list)
    function: Optional[Function] = None

    @property
    def depth(self) -> int:
        depth, current = 1, self.parent
        while current is not None:
            depth += 1
            current = current.parent
        return depth

    def contains_block(self, name: str) -> bool:
        return name in self.body

    def contains_instruction(self, instruction: Instruction) -> bool:
        assert self.function is not None
        for name in self.body:
            if instruction in self.function.block(name).instructions:
                return True
        return False

    def latch_branch_pcs(self) -> list[int]:
        """PCs of the terminators of latch blocks (the LBR loop branches)."""
        assert self.function is not None
        return [self.function.block(latch).end_pc for latch in self.latches]

    def exit_edges(self) -> list[tuple[str, str]]:
        """Edges (src, dst) leaving the loop."""
        assert self.function is not None
        edges = []
        for name in self.body:
            for successor in self.function.block(name).successors():
                if successor not in self.body:
                    edges.append((name, successor))
        return edges

    def preheader(self) -> Optional[str]:
        """The unique out-of-loop predecessor of the header, if any."""
        assert self.function is not None
        preds = [
            p
            for p in predecessors_map(self.function)[self.header]
            if p not in self.body
        ]
        if len(preds) == 1:
            return preds[0]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Loop header={self.header} depth={self.depth} "
            f"blocks={sorted(self.body)}>"
        )


def find_loops(function: Function) -> list[Loop]:
    """Detect all natural loops and their nesting; innermost-last order.

    Back edges are edges ``u -> h`` where ``h`` dominates ``u``.  Loops
    sharing a header are merged (standard practice).
    """
    idom = immediate_dominators(function)
    successors = successors_map(function)
    predecessors = predecessors_map(function)

    loops_by_header: dict[str, Loop] = {}
    for name in idom:  # reachable blocks only
        for successor in successors[name]:
            if successor in idom and dominates(idom, successor, name):
                loop = loops_by_header.setdefault(
                    successor, Loop(header=successor, function=function)
                )
                loop.latches.append(name)
                # Natural loop body: header + nodes reaching the latch
                # without passing through the header.
                loop.body.add(successor)
                stack = [name]
                while stack:
                    node = stack.pop()
                    if node in loop.body:
                        continue
                    loop.body.add(node)
                    stack.extend(
                        p for p in predecessors[node] if p in idom
                    )

    loops = sorted(
        loops_by_header.values(), key=lambda loop: len(loop.body), reverse=True
    )
    # Establish nesting: the smallest strict superset is the parent.
    for i, loop in enumerate(loops):
        best: Optional[Loop] = None
        for candidate in loops[:i]:
            if loop.header in candidate.body and candidate is not loop:
                if loop.body < candidate.body or (
                    loop.body <= candidate.body and loop.header != candidate.header
                ):
                    if best is None or len(candidate.body) < len(best.body):
                        best = candidate
        if best is not None:
            loop.parent = best
            best.children.append(loop)
    return loops


def innermost_loop_of(loops: list[Loop], block_name: str) -> Optional[Loop]:
    """The deepest loop containing ``block_name``."""
    best: Optional[Loop] = None
    for loop in loops:
        if block_name in loop.body:
            if best is None or len(loop.body) < len(best.body):
                best = loop
    return best


def induction_variables(function: Function, loop: Loop) -> list[InductionVariable]:
    """Find induction PHIs in ``loop``'s header.

    A PHI qualifies if its value along every latch edge is
    ``add/sub/mul(phi, invariant)`` (in either operand order for the
    commutative cases), covering canonical ``i++`` and non-canonical
    ``i *= 2`` forms.
    """
    definitions = definitions_map(function)
    header_block = function.block(loop.header)
    result = []
    for phi in header_block.phis():
        init: Optional[Operand] = None
        update: Optional[Instruction] = None
        ok = True
        for pred, value in phi.incomings:
            if pred in loop.body:
                if not isinstance(value, str):
                    ok = False
                    break
                candidate = definitions.get(value)
                if candidate is None or candidate.op not in (
                    Opcode.ADD,
                    Opcode.SUB,
                    Opcode.MUL,
                ):
                    ok = False
                    break
                a, b = candidate.args
                if a == phi.dst:
                    step = b
                elif b == phi.dst and candidate.op in (Opcode.ADD, Opcode.MUL):
                    step = a
                else:
                    ok = False
                    break
                if isinstance(step, str) and not _is_loop_invariant(
                    step, loop, definitions, function
                ):
                    ok = False
                    break
                if update is not None and update is not candidate:
                    ok = False  # conflicting updates along different latches
                    break
                update = candidate
            else:
                init = value
        if ok and update is not None and init is not None:
            a, b = update.args
            step = b if a == phi.dst else a
            result.append(
                InductionVariable(
                    phi=phi, init=init, step_op=update.op, step=step, update=update
                )
            )
    return result


def _is_loop_invariant(
    register: str,
    loop: Loop,
    definitions: dict[str, Instruction],
    function: Function,
) -> bool:
    defining = definitions.get(register)
    if defining is None:
        return True  # function parameter
    for name in loop.body:
        if defining in function.block(name).instructions:
            return False
    return True


@dataclass
class LoopBound:
    """The exit-test shape of a counted loop: ``cmp(tested, bound)``."""

    compare: Instruction
    tested: Operand  # the induction expression being compared
    bound: Operand  # the loop-invariant limit
    exit_block: str  # block holding the exiting branch


def loop_bound(
    function: Function, loop: Loop, indvar: InductionVariable
) -> Optional[LoopBound]:
    """Extract the bound of a counted loop, if statically visible.

    Looks at each exiting branch whose condition is a compare between the
    induction variable (or its update) and a loop-invariant operand.
    """
    definitions = definitions_map(function)
    iv_regs = {indvar.register, indvar.update.dst}
    for src, _dst in loop.exit_edges():
        terminator = function.block(src).terminator
        if terminator.op is not Opcode.BR:
            continue
        cond = terminator.args[0]
        if not isinstance(cond, str):
            continue
        compare = definitions.get(cond)
        if compare is None or compare.op not in (
            Opcode.CMP_LT,
            Opcode.CMP_LE,
            Opcode.CMP_GT,
            Opcode.CMP_GE,
            Opcode.CMP_NE,
            Opcode.CMP_EQ,
        ):
            continue
        a, b = compare.args
        if isinstance(a, str) and a in iv_regs:
            tested, bound = a, b
        elif isinstance(b, str) and b in iv_regs:
            tested, bound = b, a
        else:
            continue
        if isinstance(bound, str) and not _is_loop_invariant(
            bound, loop, definitions, function
        ):
            continue
        return LoopBound(compare=compare, tested=tested, bound=bound, exit_block=src)
    return None
