"""Backward load-slice extraction (the heart of both injection passes).

A *load-slice* is the set of instructions that compute a load's address,
discovered by backward depth-first search from the load's address operand
(paper §2.1 and §3.5, after Ainsworth & Jones).  The search stops at PHI
nodes; following the paper's extension, we keep collecting *all* PHIs the
slice depends on — if more than one induction PHI appears, the load sits in
a nested loop and is eligible for outer-loop injection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.cfg import definitions_map
from repro.analysis.loops import Loop, innermost_loop_of
from repro.ir.nodes import Function, Instruction
from repro.ir.opcodes import Opcode


@dataclass
class LoadSlice:
    """The address-computation slice of one load (or arbitrary value).

    ``load`` is None for value slices produced by
    :func:`extract_value_slice`.
    """

    load: Optional[Instruction]
    #: Instructions in dependency order (producers before consumers),
    #: excluding PHIs and the load itself.
    instructions: list[Instruction] = field(default_factory=list)
    #: PHI instructions the slice depends on (stopping points of the DFS).
    phis: list[Instruction] = field(default_factory=list)
    #: Loads contained in the slice (excluding the target load).
    intermediate_loads: list[Instruction] = field(default_factory=list)
    #: Register leaves with no definition in the function (parameters).
    free_registers: set[str] = field(default_factory=set)
    #: True when the slice crosses a CALL result: such slices cannot be
    #: cloned for prefetching (the call may have side effects).
    has_call: bool = False

    @property
    def is_indirect(self) -> bool:
        """True when the address depends on the value of another load —
        the pattern hardware prefetchers cannot follow (``T[B[i]]``)."""
        return bool(self.intermediate_loads)

    @property
    def phi_registers(self) -> list[str]:
        return [phi.dst for phi in self.phis if phi.dst is not None]


def extract_load_slice(function: Function, load: Instruction) -> LoadSlice:
    """Backward-DFS from ``load``'s address to the controlling PHIs."""
    if load.op is not Opcode.LOAD:
        raise ValueError("extract_load_slice expects a LOAD instruction")
    address = load.args[0]
    result = _backward_slice(function, address)
    result.load = load
    return result


def extract_value_slice(function: Function, register: str) -> LoadSlice:
    """Backward-DFS from an arbitrary register to the controlling PHIs.

    Used by outer-loop injection (§3.5): after reaching the inner loop's
    induction PHI, the search continues through the PHI's *init* value
    into the outer loop ('extending the prefetch slice to contain both
    induction variables').
    """
    return _backward_slice(function, register)


def _backward_slice(function: Function, root) -> LoadSlice:
    definitions = definitions_map(function)

    result = LoadSlice(load=None)  # type: ignore[arg-type]
    visited: set[int] = set()
    ordered: list[Instruction] = []

    def visit(register: str) -> None:
        defining = definitions.get(register)
        if defining is None:
            result.free_registers.add(register)
            return
        if id(defining) in visited:
            return
        visited.add(id(defining))
        if defining.op is Opcode.PHI:
            result.phis.append(defining)
            return
        if defining.op is Opcode.CALL:
            result.has_call = True
            return  # opaque: do not pull calls into prefetch slices
        for operand in defining.register_operands():
            visit(operand)
        ordered.append(defining)
        if defining.op is Opcode.LOAD:
            result.intermediate_loads.append(defining)

    if isinstance(root, str):
        visit(root)
    result.instructions = ordered
    return result


def find_indirect_loads(
    function: Function,
    loops: list[Loop],
    require_indirect: bool = True,
) -> list[tuple[Instruction, LoadSlice, Loop]]:
    """Scan a function for prefetch candidates, Ainsworth & Jones style.

    Returns ``(load, slice, innermost_loop)`` for every load that sits in a
    loop and whose address depends on at least one induction-style PHI.
    With ``require_indirect`` (the default, matching the paper) only loads
    whose slice contains another load are returned; direct strided loads
    are left to the hardware prefetcher.
    """
    candidates = []
    for block in function.blocks:
        loop = innermost_loop_of(loops, block.name)
        if loop is None:
            continue
        for instruction in block.instructions:
            if instruction.op is not Opcode.LOAD:
                continue
            load_slice = extract_load_slice(function, instruction)
            if not load_slice.phis:
                continue
            if require_indirect and not load_slice.is_indirect:
                continue
            if instruction in load_slice.intermediate_loads:
                continue
            candidates.append((instruction, load_slice, loop))
    # Drop loads that only serve as address feeders of another candidate —
    # prefetching the consumer covers them.
    feeder_ids = set()
    for _, load_slice, _ in candidates:
        for feeder in load_slice.intermediate_loads:
            feeder_ids.add(id(feeder))
    return [
        (load, load_slice, loop)
        for load, load_slice, loop in candidates
        if id(load) not in feeder_ids
    ]


def slice_for_pc(
    function: Function, load_pc: int
) -> Optional[tuple[Instruction, LoadSlice]]:
    """Resolve a profiled delinquent-load PC to its instruction and slice.

    This is the reproduction's analog of AutoFDO's PC-to-IR mapping
    (paper §3.5): our 'binary' keeps an exact PC per instruction, so the
    mapping is lossless.
    """
    for instruction in function.instructions():
        if instruction.pc == load_pc and instruction.op is Opcode.LOAD:
            return instruction, extract_load_slice(function, instruction)
    return None
