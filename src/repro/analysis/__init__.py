"""Static analyses over the miniature IR: CFG, dominators, loops, slices."""

from repro.analysis.cfg import (
    block_of_map,
    definitions_map,
    dominates,
    immediate_dominators,
    predecessors_map,
    reverse_postorder,
    successors_map,
)
from repro.analysis.loops import (
    InductionVariable,
    Loop,
    LoopBound,
    find_loops,
    induction_variables,
    innermost_loop_of,
    loop_bound,
)
from repro.analysis.slices import (
    LoadSlice,
    extract_load_slice,
    extract_value_slice,
    find_indirect_loads,
    slice_for_pc,
)

__all__ = [
    "InductionVariable",
    "LoadSlice",
    "Loop",
    "LoopBound",
    "block_of_map",
    "definitions_map",
    "dominates",
    "extract_load_slice",
    "extract_value_slice",
    "find_indirect_loads",
    "find_loops",
    "immediate_dominators",
    "induction_variables",
    "innermost_loop_of",
    "loop_bound",
    "predecessors_map",
    "reverse_postorder",
    "slice_for_pc",
    "successors_map",
]
