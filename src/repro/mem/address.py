"""Flat byte-addressed memory with named array segments.

Workloads allocate named arrays here *before* building their IR, so array
base addresses appear as immediates in the IR (the moral equivalent of a
linked binary's data section).  The machine's functional side reads and
writes values through this class; the timing side only sees addresses.

Values are Python integers (64-bit-ish by convention).  Arrays are stored
as Python lists for fast scalar access in the interpreter hot path; numpy
arrays are accepted and converted at allocation.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Optional, Sequence, Union

LINE_BYTES = 64

ArrayLike = Union[Sequence[int], Iterable[int]]


class MemoryError_(Exception):
    """Raised on out-of-bounds or unmapped accesses (demand side only)."""


class Segment:
    """One named, contiguous array of fixed-size elements."""

    __slots__ = ("name", "base", "elem_size", "values", "end")

    def __init__(self, name: str, base: int, elem_size: int, values: list) -> None:
        self.name = name
        self.base = base
        self.elem_size = elem_size
        self.values = values
        self.end = base + elem_size * len(values)

    def __len__(self) -> int:
        return len(self.values)

    def address_of(self, index: int) -> int:
        return self.base + index * self.elem_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Segment {self.name} base={self.base:#x} n={len(self.values)} "
            f"elem={self.elem_size}B>"
        )


class AddressSpace:
    """Allocator + functional memory for a single simulated process."""

    #: Base of the data section; leaves PC space (< 16MiB) unmapped.
    DATA_BASE = 0x1000_0000
    #: Guard gap between segments so no cache line spans two arrays.
    GUARD_BYTES = 2 * LINE_BYTES

    def __init__(self) -> None:
        self._segments: list[Segment] = []
        self._bases: list[int] = []
        self._by_name: dict[str, Segment] = {}
        self._next_base = self.DATA_BASE
        self._last: Optional[Segment] = None

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(
        self,
        name: str,
        data: Union[int, ArrayLike],
        elem_size: int = 8,
    ) -> Segment:
        """Allocate a segment.

        ``data`` is either an element count (zero-initialized) or an
        iterable of initial values.  ``elem_size`` only affects address
        arithmetic (4 for int32-style arrays, 8 for int64/pointers).
        """
        if name in self._by_name:
            raise MemoryError_(f"segment {name!r} already allocated")
        if elem_size <= 0 or (elem_size & (elem_size - 1)) != 0:
            raise MemoryError_(f"elem_size must be a positive power of two")
        if isinstance(data, int):
            values = [0] * data
        else:
            values = [int(v) for v in data]
        base = self._next_base
        segment = Segment(name, base, elem_size, values)
        self._segments.append(segment)
        self._bases.append(base)
        self._by_name[name] = segment
        span = elem_size * len(values)
        self._next_base = base + span + self.GUARD_BYTES
        # Keep 64-byte alignment for the next segment.
        remainder = self._next_base % LINE_BYTES
        if remainder:
            self._next_base += LINE_BYTES - remainder
        return segment

    def segment(self, name: str) -> Segment:
        try:
            return self._by_name[name]
        except KeyError:
            raise MemoryError_(f"unknown segment {name!r}") from None

    def segments(self) -> list[Segment]:
        return list(self._segments)

    # ------------------------------------------------------------------
    # Address resolution
    # ------------------------------------------------------------------
    def _find(self, addr: int) -> Optional[Segment]:
        last = self._last
        if last is not None and last.base <= addr < last.end:
            return last
        position = bisect_right(self._bases, addr) - 1
        if position < 0:
            return None
        candidate = self._segments[position]
        if candidate.base <= addr < candidate.end:
            self._last = candidate
            return candidate
        return None

    def is_mapped(self, addr: int) -> bool:
        return self._find(addr) is not None

    # ------------------------------------------------------------------
    # Functional access (demand side; raises on bad addresses)
    # ------------------------------------------------------------------
    def load(self, addr: int) -> int:
        segment = self._find(addr)
        if segment is None:
            raise MemoryError_(f"load from unmapped address {addr:#x}")
        offset = addr - segment.base
        index, misalign = divmod(offset, segment.elem_size)
        if misalign:
            raise MemoryError_(
                f"misaligned load at {addr:#x} in segment {segment.name}"
            )
        return segment.values[index]

    def store(self, addr: int, value: int) -> None:
        segment = self._find(addr)
        if segment is None:
            raise MemoryError_(f"store to unmapped address {addr:#x}")
        offset = addr - segment.base
        index, misalign = divmod(offset, segment.elem_size)
        if misalign:
            raise MemoryError_(
                f"misaligned store at {addr:#x} in segment {segment.name}"
            )
        segment.values[index] = value

    def total_bytes(self) -> int:
        return sum(s.elem_size * len(s) for s in self._segments)
