"""Per-configuration cache state for the batched sweep runner.

A batched run (:mod:`repro.machine.batch`) executes N memory/scheme
configurations in one pass over the instruction stream.  Cache geometry
affects *timing*, never loaded values, and the batch compiler rejects
any program whose stores or control flow could diverge across cells —
so every cell observes the same value stream and the batch shares one
:class:`~repro.mem.address.AddressSpace` (cell 0's).  What each cell
keeps private is the full microarchitectural state: L1/L2/LLC tags and
recency, MSHR occupancy, hardware prefetchers, and its own
:class:`~repro.machine.pmu.Counters`.

Why the tag checks are not numpy-vectorized
-------------------------------------------
Probing N cells for one line address looks like an obvious candidate
for a vectorized compare (one array of tags per level, one ``==``
across cells).  It is not, for two reasons:

* every probe also *mutates* per-cell state — LRU recency order, MSHR
  slots, stride-table entries — and that update is inherently
  sequential per cell;
* cells stop agreeing after the first capacity/associativity
  difference: hits and misses diverge, so each cell walks a different
  path through the hierarchy (L1 fill vs L2 probe vs DRAM + MSHR) and
  there is no common "rest of the access" to batch.

Vectorizing only the pure tag compare would add a numpy round-trip per
access without removing the per-cell update loop, so each cell keeps
the scalar L1 fast-path ports (:mod:`repro.mem.fastpath`) instead —
the same ports the sequential engines bind.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.machine.pmu import Counters
from repro.mem.address import AddressSpace
from repro.mem.hierarchy import MemorySystem

if TYPE_CHECKING:  # pragma: no cover - hint only, avoids an import cycle
    from repro.machine.config import MachineConfig


class CellState:
    """One sweep cell: a private hierarchy + counters over a shared space.

    The ports are pre-bound once at construction so the batched op
    closures pay one attribute load per access, exactly like the
    sequential block engine's ``_Frame``.
    """

    __slots__ = ("config", "counters", "mem", "load", "store", "prefetch")

    def __init__(self, config: "MachineConfig", space: AddressSpace) -> None:
        self.config = config
        self.counters = Counters()
        self.mem = MemorySystem(config.memory, space, self.counters)
        self.load = self.mem.load_port()
        self.store = self.mem.store_port()
        self.prefetch = self.mem.prefetch_port()


def space_mismatch(
    base: AddressSpace, other: AddressSpace
) -> Optional[str]:
    """Why ``other`` cannot share ``base``'s address space, or None.

    Cells are built independently (one workload build per cell), so the
    layouts *should* be deterministic clones; this check turns a
    violated assumption into a clean per-cell fallback instead of a
    silently wrong batch.
    """
    segments = base.segments()
    others = other.segments()
    if len(segments) != len(others):
        return f"segment count {len(others)} != {len(segments)}"
    for mine, theirs in zip(segments, others):
        if (
            mine.name != theirs.name
            or mine.base != theirs.base
            or mine.elem_size != theirs.elem_size
        ):
            return f"segment {theirs.name!r} layout differs from {mine.name!r}"
        if mine.values != theirs.values:
            return f"segment {mine.name!r} initial contents differ"
    return None


def shared_space(spaces: Sequence[AddressSpace]) -> AddressSpace:
    """Validate that every cell's space is identical and return cell 0's.

    Raises ``ValueError`` naming the first mismatch.
    """
    base = spaces[0]
    for index, other in enumerate(spaces[1:], start=1):
        why = space_mismatch(base, other)
        if why is not None:
            raise ValueError(f"cell {index} address space: {why}")
    return base
