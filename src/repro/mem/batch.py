"""Per-configuration cache state for the batched sweep runner.

A batched run (:mod:`repro.machine.batch`) executes N memory/scheme
configurations in one pass over the instruction stream.  Cache geometry
affects *timing*, never loaded values, and the batch compiler rejects
any program whose stores or control flow could diverge across cells —
so every cell observes the same value stream and the batch shares one
:class:`~repro.mem.address.AddressSpace` (cell 0's).  What each cell
keeps private is the full microarchitectural state: L1/L2/LLC tags and
recency, MSHR occupancy, hardware prefetchers, and its own
:class:`~repro.machine.pmu.Counters`.

How the tag checks are vectorized (and when they are not)
---------------------------------------------------------
Probing N cells for one line address looks like an obvious candidate
for a vectorized compare (one array of tags per level, one ``==``
across cells) — but every probe also *mutates* per-cell state (LRU
recency, MSHR slots, stride tables), and cells stop agreeing after the
first capacity difference, so a full vectorized hierarchy walk is off
the table.  What *can* be vectorized exactly is the dominant steady
state: an L1 hit on the **most recently used** line of its set.  For an
MRU hit the LRU refresh (pop + re-insert) is a structural no-op, so
knowing "cell i would MRU-hit" is enough to skip the dict probe
entirely and only bump counters/clocks.

:class:`L1TagVector` keeps a per-cell mirror of each L1 set's MRU line
(numpy ``int64`` matrix when numpy is importable, per-cell
``array('q')`` rows otherwise) and answers one gathered compare per
probe.  The mirror is a pure *routing accelerator*: a positive answer
is only trusted for a clean cell, any port call (which can fill, evict,
or drain behind the mirror's back) marks the cell dirty, and dirty
rows are rebuilt from the structural set views before the next probe —
so simulated state is bit-identical with the mirror on or off.  Below
:data:`VECTOR_CELL_THRESHOLD` cells the gather costs more than N scalar
dict probes, so the batched superblock tier only arms the lane past the
threshold (``REPRO_BATCH_VECTOR_CELLS`` overrides it); the per-block
batch engine keeps the scalar L1 fast-path ports
(:mod:`repro.mem.fastpath`) either way — the same ports the sequential
engines bind.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional, Sequence

from repro.machine.pmu import Counters
from repro.mem.address import AddressSpace
from repro.mem.hierarchy import MemorySystem

try:  # pragma: no cover - exercised via either branch per environment
    import numpy as _np
except Exception:  # pragma: no cover - numpy is a baked-in dependency
    _np = None

if TYPE_CHECKING:  # pragma: no cover - hint only, avoids an import cycle
    from repro.machine.config import MachineConfig

#: Cell count at which the batched superblock tier arms the vectorized
#: L1 tag lane.  Measured on the bench_sweep BFS-tiny ladders the
#: scalar dict probes beat the gather at 8, 32 and 64 cells (the
#: per-probe numpy dispatch plus dirty-row rebuilds outweigh the
#: vectorized compare until far larger batches), so the default sits
#: above every sweep shape the benchmarks exercise and the lane is
#: effectively opt-in via ``REPRO_BATCH_VECTOR_CELLS``; see
#: docs/PERFORMANCE.md for the numbers.
VECTOR_CELL_THRESHOLD = 256


def vector_threshold() -> int:
    """The active lane-activation threshold (env-overridable for tests
    and benchmarks: ``REPRO_BATCH_VECTOR_CELLS=1`` forces the lane on
    for any batch, ``0`` disables it)."""
    raw = os.environ.get("REPRO_BATCH_VECTOR_CELLS")
    if raw is None:
        return VECTOR_CELL_THRESHOLD
    try:
        value = int(raw)
    except ValueError:
        return VECTOR_CELL_THRESHOLD
    return value if value > 0 else (1 << 62)


class CellState:
    """One sweep cell: a private hierarchy + counters over a shared space.

    The ports are pre-bound once at construction so the batched op
    closures pay one attribute load per access, exactly like the
    sequential block engine's ``_Frame``.
    """

    __slots__ = ("config", "counters", "mem", "load", "store", "prefetch")

    def __init__(self, config: "MachineConfig", space: AddressSpace) -> None:
        self.config = config
        self.counters = Counters()
        self.mem = MemorySystem(config.memory, space, self.counters)
        self.load = self.mem.load_port()
        self.store = self.mem.store_port()
        self.prefetch = self.mem.prefetch_port()


def space_mismatch(
    base: AddressSpace, other: AddressSpace
) -> Optional[str]:
    """Why ``other`` cannot share ``base``'s address space, or None.

    Cells are built independently (one workload build per cell), so the
    layouts *should* be deterministic clones; this check turns a
    violated assumption into a clean per-cell fallback instead of a
    silently wrong batch.
    """
    segments = base.segments()
    others = other.segments()
    if len(segments) != len(others):
        return f"segment count {len(others)} != {len(segments)}"
    for mine, theirs in zip(segments, others):
        if (
            mine.name != theirs.name
            or mine.base != theirs.base
            or mine.elem_size != theirs.elem_size
        ):
            return f"segment {theirs.name!r} layout differs from {mine.name!r}"
        if mine.values != theirs.values:
            return f"segment {mine.name!r} initial contents differ"
    return None


class L1TagVector:
    """Vectorized per-cell L1 MRU-line mirror for the batched tiers.

    One row per cell, one slot per L1 set, holding the line number of
    that set's most-recently-used way (``-1`` when empty).  ``probe``
    answers "would this line MRU-hit in cell i?" for all cells at once;
    a positive answer licenses the caller to skip the dict probe
    because the LRU refresh of an MRU hit is a structural no-op.

    Exactness protocol (the mirror routes, it never decides state):

    * a *negative* answer is never trusted as a miss — the caller falls
      back to the ordinary dict probe, which also handles non-MRU hits;
    * after a non-MRU hit's re-insert or a port-side fill, the caller
      calls :meth:`note` (the line is now its set's MRU);
    * any port call that may touch other sets (demand miss fills, MSHR
      drains, back-invalidations) marks the whole cell dirty via
      :meth:`dirty`; dirty rows are rebuilt from the structural set
      views (dict order is LRU→MRU, so the MRU is the *last* key) on
      the next probe.
    """

    __slots__ = (
        "n",
        "_sets",
        "_masks",
        "_dirty",
        "_mru",
        "_rows",
        "_vmasks",
        "probes",
        "rebuilds",
    )

    def __init__(self, l1_sets: Sequence[list], l1_masks: Sequence[int]):
        self.n = len(l1_sets)
        self._sets = list(l1_sets)  # per-cell structural set views
        self._masks = list(l1_masks)
        self._dirty = bytearray([1] * self.n)  # start dirty: rebuild first
        if _np is not None:
            width = max(len(sets) for sets in self._sets)
            self._mru = _np.full((self.n, width), -1, dtype=_np.int64)
            self._rows = _np.arange(self.n)
            self._vmasks = _np.asarray(self._masks, dtype=_np.int64)
        else:
            import array

            self._mru = [
                array.array("q", [-1] * len(sets)) for sets in self._sets
            ]
            self._rows = None
            self._vmasks = None
        self.probes = 0
        self.rebuilds = 0

    # ------------------------------------------------------------------
    def dirty(self, i: int) -> None:
        """Cell ``i``'s mirror can no longer be trusted (a port call may
        have filled/evicted/drained); rebuild before the next probe."""
        self._dirty[i] = 1

    def dirty_all(self) -> None:
        """Invalidate every cell (per-block dispatch ran memory ops
        outside the generated code's note/dirty discipline)."""
        for i in range(self.n):
            self._dirty[i] = 1

    def _rebuild(self, i: int) -> None:
        self.rebuilds += 1
        row = self._mru[i]
        for index, bucket in enumerate(self._sets[i]):
            row[index] = next(reversed(bucket)) if bucket else -1
        self._dirty[i] = 0

    def note(self, i: int, line: int) -> None:
        """``line`` just became the MRU of its set in cell ``i``."""
        self._mru[i][line & self._masks[i]] = line

    def probe(self, line: int):
        """Per-cell truthy flags: True where ``line`` is that cell's
        set-MRU (a guaranteed L1 hit whose LRU refresh is a no-op)."""
        self.probes += 1
        dirty = self._dirty
        if 1 in dirty:
            rebuild = self._rebuild
            for i in range(self.n):
                if dirty[i]:
                    rebuild(i)
        if self._rows is not None:
            # .tolist() so the caller's per-cell branch tests plain
            # bools instead of paying numpy scalar indexing per cell.
            return (
                self._mru[self._rows, line & self._vmasks] == line
            ).tolist()
        mru = self._mru
        masks = self._masks
        return [mru[i][line & masks[i]] == line for i in range(self.n)]

    # ------------------------------------------------------------------
    def scan_consistent(self) -> bool:
        """True iff every *clean* cell's mirror matches a fresh
        structural scan (property-test hook)."""
        for i in range(self.n):
            if self._dirty[i]:
                continue
            row = self._mru[i]
            for index, bucket in enumerate(self._sets[i]):
                expect = next(reversed(bucket)) if bucket else -1
                if row[index] != expect:
                    return False
        return True


def build_lane(cells: Sequence[CellState]) -> L1TagVector:
    """An :class:`L1TagVector` over ``cells``'s L1 structural views."""
    fronts = [cell.mem.front() for cell in cells]
    return L1TagVector(
        [front._l1_sets for front in fronts],
        [front._l1_mask for front in fronts],
    )


def shared_space(spaces: Sequence[AddressSpace]) -> AddressSpace:
    """Validate that every cell's space is identical and return cell 0's.

    Raises ``ValueError`` naming the first mismatch.
    """
    base = spaces[0]
    for index, other in enumerate(spaces[1:], start=1):
        why = space_mismatch(base, other)
        if why is not None:
            raise ValueError(f"cell {index} address space: {why}")
    return base
