"""Stacked L1/L2/LLC demand fast path: resolve the hit level without
walking :meth:`MemorySystem.load`'s general prologue.

PR 3 introduced an L1-only front path; for loop-heavy workloads the
steady state is dominated by loads the L1 *misses* — pointer chases and
indirect gathers that land in the L2/LLC or coalesce with an in-flight
fill — and every one of those paid the full slow-path walk.  This
module stacks structural views of all three levels into one
:class:`MemoryFastPath` object whose ``load``/``store`` methods mirror
:meth:`MemorySystem.load` / :meth:`MemorySystem.store` arm for arm with
all per-call attribute traffic pre-resolved (set arrays, set masks,
associativities, counters, latencies, the MSHR dict and the
prefetch-usefulness side table are captured once per machine).

Design notes (why these are *views*, not shadow tables):

* Every level's per-set dicts are read **in place** (structural
  sharing, see :meth:`SetAssociativeCache.sets_view`).  Fills,
  hardware-prefetch installs, and evictions — including the inclusive
  hierarchy's back-invalidations — mutate those same dictionaries, so
  the views can never go stale.  Shadow line-presence tables were
  rejected because a hit must still refresh the level's LRU order (a
  probe that skipped the pop/re-insert would change future victim
  selection and break the bit-identical guarantee).
* Line *removal* has a single entry point — :meth:`invalidate_line` —
  which the hierarchy's eviction path routes through
  (:meth:`MemorySystem._on_llc_evict`): back-invalidations triggered by
  LLC capacity evictions, by hardware-prefetch fills displacing a
  victim, and by the store write-allocate path all funnel into it.
  ``tests/test_mem_fastpath.py`` property-checks that the view state
  always equals a fresh structural scan of the caches.
* The hierarchy mechanics a demand miss exercises — the three-level
  fill (:meth:`_fill_fp`), the fill-buffer drain (:meth:`_drain_fp`),
  and the hardware-prefetch observe/issue pair (:meth:`_hw_l2` /
  :meth:`_issue_hw`) — are open-coded here, each mirroring its
  :class:`MemorySystem` counterpart arm for arm with trace arms elided.
  The LLC eviction path inside ``_fill_fp`` performs the same inclusive
  back-invalidation and early-eviction accounting as
  :meth:`MemorySystem._on_llc_evict`.
* The fast path is **bypassed entirely while tracing is armed**
  (:meth:`MemorySystem.load_port` hands out the plain methods then), so
  the observability subsystem's traced==untraced guarantees never
  depend on this module.  Every ``self.trace is not None`` arm of the
  slow path is therefore statically dead here and elided.

The fast engine, the translating engine, and the turbo tier's fused
superblocks all bind their demand entry points through
:meth:`MemorySystem.load_port` / :meth:`MemorySystem.store_port`; the
reference interpreter keeps calling the plain methods so it stays the
obviously-correct baseline the differential tests compare against.
"""

from __future__ import annotations

from typing import Callable

#: Demand-access signature shared by the ports: (addr, now, pc) -> latency.
DemandPort = Callable[[int, float, int], int]


class MemoryFastPath:
    """Pre-resolved three-level demand front path for one MemorySystem.

    Bit-identical to the slow paths: every counter bump, LRU refresh,
    usefulness consumption, hardware-prefetch trigger, MSHR coalesce
    and stall-cycle charge happens in the same order with the same
    values; only the attribute lookups and bound-method indirection of
    the general walk are gone.
    """

    __slots__ = (
        "mem",
        "_l1_sets",
        "_l1_mask",
        "_l1_assoc",
        "_l2_sets",
        "_l2_mask",
        "_l2_assoc",
        "_llc_sets",
        "_llc_mask",
        "_llc_assoc",
        "_counters",
        "_mshr",
        "_mshr_cap",
        "_unused",
        "_is_mapped",
        "_has_next_line",
        "_stride_table",
        "_stride_entries",
        "_stride_threshold",
        "_stride_ceiling",
        "_stride_degree",
        "_l1_lat",
        "_l2_lat",
        "_llc_lat",
        "_mem_lat",
        "_ideal",
    )

    def __init__(self, mem) -> None:
        self.mem = mem
        self._l1_sets = mem.l1.sets_view()
        self._l1_mask = mem.l1.set_mask()
        self._l1_assoc = mem.l1.config.associativity
        self._l2_sets = mem.l2.sets_view()
        self._l2_mask = mem.l2.set_mask()
        self._l2_assoc = mem.l2.config.associativity
        self._llc_sets = mem.llc.sets_view()
        self._llc_mask = mem.llc.set_mask()
        self._llc_assoc = mem.llc.config.associativity
        self._counters = mem.counters
        self._mshr = mem._mshr
        self._mshr_cap = mem.config.mshr_entries
        self._unused = mem.prefetched_unused_view()
        self._is_mapped = mem.space.is_mapped
        self._has_next_line = mem._next_line is not None
        stride = mem._stride
        if stride is not None:
            self._stride_table = stride._table
            self._stride_entries = stride.entries
            self._stride_threshold = stride.threshold
            self._stride_ceiling = stride.threshold + 2
            self._stride_degree = stride.degree
        else:
            self._stride_table = None
            self._stride_entries = 1
            self._stride_threshold = 0
            self._stride_ceiling = 0
            self._stride_degree = 0
        self._l1_lat = mem._l1_lat
        self._l2_lat = mem._l2_lat
        self._llc_lat = mem._llc_lat
        self._mem_lat = mem._mem_lat
        self._ideal = mem._ideal

    # ------------------------------------------------------------------
    # The single line-removal entry point.
    # ------------------------------------------------------------------
    def invalidate_line(self, addr: int) -> None:
        """Drop ``addr``'s line from every level's view.

        This is the one place lines leave the stacked views from the
        outside: LLC capacity evictions, hardware-prefetch fills that
        displace a victim, and store write-allocates all back-invalidate
        through here (via :meth:`MemorySystem._on_llc_evict`).  Because
        the views structurally share the caches' set dicts, this *is*
        the cache invalidation — there is no second bookkeeping
        structure that could drift.
        """
        line = addr >> 6
        self._l1_sets[line & self._l1_mask].pop(line, None)
        self._l2_sets[line & self._l2_mask].pop(line, None)
        self._llc_sets[line & self._llc_mask].pop(line, None)

    # ------------------------------------------------------------------
    # Consistency scan (property-test hook).
    # ------------------------------------------------------------------
    def view_lines(self) -> dict:
        """Per-level resident lines *in LRU order* as the views see them."""
        return {
            "l1": [line for s in self._l1_sets for line in s],
            "l2": [line for s in self._l2_sets for line in s],
            "llc": [line for s in self._llc_sets for line in s],
        }

    def scan_consistent(self) -> bool:
        """True iff the views match a fresh structural scan of the
        hierarchy (same lines, same LRU order, same masks)."""
        mem = self.mem
        fresh = {
            "l1": mem.l1.resident_lines(),
            "l2": mem.l2.resident_lines(),
            "llc": mem.llc.resident_lines(),
        }
        masks_ok = (
            self._l1_mask == mem.l1.set_mask()
            and self._l2_mask == mem.l2.set_mask()
            and self._llc_mask == mem.llc.set_mask()
        )
        return masks_ok and self.view_lines() == fresh

    # ------------------------------------------------------------------
    # Open-coded hierarchy mechanics.  Each mirrors its MemorySystem
    # counterpart arm for arm with the trace arms elided (the fast path
    # never runs while tracing is armed) and the per-call indirection
    # flattened; the differential oracle and the structural-scan
    # property test keep them honest.
    # ------------------------------------------------------------------
    def _fill_fp(self, line: int) -> None:
        # == MemorySystem._fill: LLC, then L2, then L1.  Only the LLC
        # has an eviction callback; its body (_on_llc_evict with trace
        # off) is inlined on the victim path.
        llc_set = self._llc_sets[line & self._llc_mask]
        if llc_set.pop(line, None) is None and len(llc_set) >= self._llc_assoc:
            victim = next(iter(llc_set))
            del llc_set[victim]
            # Inclusive back-invalidation + early-eviction accounting.
            self._l1_sets[victim & self._l1_mask].pop(victim, None)
            self._l2_sets[victim & self._l2_mask].pop(victim, None)
            unused = self._unused
            if unused and unused.pop(victim, None):
                self._counters.sw_prefetch_early_evicted += 1
        llc_set[line] = 0
        l2_set = self._l2_sets[line & self._l2_mask]
        if l2_set.pop(line, None) is None and len(l2_set) >= self._l2_assoc:
            del l2_set[next(iter(l2_set))]
        l2_set[line] = 0
        l1_set = self._l1_sets[line & self._l1_mask]
        if l1_set.pop(line, None) is None and len(l1_set) >= self._l1_assoc:
            del l1_set[next(iter(l1_set))]
        l1_set[line] = 0

    def _fill_absent_fp(self, line: int) -> None:
        # == _fill_fp for a line known to be absent from every level: a
        # line only enters the MSHR when it is uncached, and nothing
        # fills it behind the MSHR's back (demand/store paths consume
        # the entry first), so MSHR drains, coalesced fills, and true
        # demand misses can skip the present-check pops entirely.
        llc_set = self._llc_sets[line & self._llc_mask]
        if len(llc_set) >= self._llc_assoc:
            victim = next(iter(llc_set))
            del llc_set[victim]
            self._l1_sets[victim & self._l1_mask].pop(victim, None)
            self._l2_sets[victim & self._l2_mask].pop(victim, None)
            unused = self._unused
            if unused and unused.pop(victim, None):
                self._counters.sw_prefetch_early_evicted += 1
        llc_set[line] = 0
        l2_set = self._l2_sets[line & self._l2_mask]
        if len(l2_set) >= self._l2_assoc:
            del l2_set[next(iter(l2_set))]
        l2_set[line] = 0
        l1_set = self._l1_sets[line & self._l1_mask]
        if len(l1_set) >= self._l1_assoc:
            del l1_set[next(iter(l1_set))]
        l1_set[line] = 0

    def _drain_fp(self, now) -> None:
        # == MemorySystem.drain, untraced arm.  Callers pre-check the
        # next-ready bound, so entering here means a fill is due.  Every
        # MSHR insert charges the same DRAM latency at a monotone clock,
        # so the dict's insertion order IS ready order: drain the ready
        # prefix and stop at the first still-pending entry instead of
        # scanning (and re-minimizing) the whole buffer.
        mshr = self._mshr
        unused = self._unused
        fill = self._fill_absent_fp
        while mshr:
            line = next(iter(mshr))
            entry = mshr[line]
            if entry[0] > now:
                self.mem._mshr_next_ready = entry[0]
                return
            del mshr[line]
            fill(line)
            unused[line] = entry[1]
        self.mem._mshr_next_ready = float("inf")

    def _issue_hw(self, line: int, now) -> None:
        # == MemorySystem._issue_prefetch with software=False: drops are
        # silent (only software prefetches count redundant/mshr drops).
        mshr = self._mshr
        if (
            line in self._l1_sets[line & self._l1_mask]
            or line in self._l2_sets[line & self._l2_mask]
            or line in self._llc_sets[line & self._llc_mask]
            or line in mshr
        ):
            return
        if len(mshr) >= self._mshr_cap:
            return
        ready = now + self._mem_lat
        mshr[line] = [ready, False]
        mem = self.mem
        if ready < mem._mshr_next_ready:
            mem._mshr_next_ready = ready
        counters = self._counters
        counters.offcore_all_data_rd += 1
        counters.hw_prefetch_issued += 1

    def _hw_l2(self, pc: int, line: int, now) -> None:
        # == StridePrefetcher.observe + the mapped/issue filter of
        # MemorySystem._hardware_prefetch(level="l2").
        table = self._stride_table
        slot = pc % self._stride_entries
        entry = table.get(slot)
        if entry is None or entry[0] != pc:
            table[slot] = (pc, line, 0, 0)
            return
        stride = entry[2]
        confidence = entry[3]
        new_stride = line - entry[1]
        if new_stride == 0:
            return
        if new_stride == stride:
            confidence += 1
            if confidence > self._stride_ceiling:
                confidence = self._stride_ceiling
        else:
            stride = new_stride
            confidence = 1
        table[slot] = (pc, line, stride, confidence)
        if confidence >= self._stride_threshold:
            issue = self._issue_hw
            is_mapped = self._is_mapped
            for i in range(self._stride_degree):
                candidate = line + stride * (i + 1)
                if is_mapped(candidate * 64):
                    issue(candidate, now)

    # ------------------------------------------------------------------
    # Demand load: MemorySystem.load with trace arms elided.
    # ------------------------------------------------------------------
    def load(self, addr: int, now, pc: int):
        line = addr >> 6
        counters = self._counters
        unused = self._unused
        l1_set = self._l1_sets[line & self._l1_mask]
        flags = l1_set.pop(line, None)
        if flags is not None:
            l1_set[line] = flags  # re-insert -> most recently used
            counters.l1_hits += 1
            if unused:
                software = unused.pop(line, None)
                if software is not None:
                    if software:
                        counters.sw_prefetch_useful += 1
                    else:
                        counters.hw_prefetch_useful += 1
            return self._l1_lat
        counters.l1_misses += 1
        mshr = self._mshr
        if mshr and now >= self.mem._mshr_next_ready:
            self._drain_fp(now)
            # L1 may have just been filled by the drain: reclassify.
            flags = l1_set.pop(line, None)
            if flags is not None:
                l1_set[line] = flags
                counters.l1_misses -= 1
                counters.l1_hits += 1
                if unused:
                    software = unused.pop(line, None)
                    if software is not None:
                        if software:
                            counters.sw_prefetch_useful += 1
                        else:
                            counters.hw_prefetch_useful += 1
                return self._l1_lat

        l2_set = self._l2_sets[line & self._l2_mask]
        flags = l2_set.pop(line, None)
        if flags is not None:
            l2_set[line] = flags
            counters.l2_hits += 1
            if unused:
                software = unused.pop(line, None)
                if software is not None:
                    if software:
                        counters.sw_prefetch_useful += 1
                    else:
                        counters.hw_prefetch_useful += 1
            # Inline l1.insert(line): the L1 has no eviction callback.
            if len(l1_set) >= self._l1_assoc:
                del l1_set[next(iter(l1_set))]
            l1_set[line] = 0
            if self._ideal:
                return self._l1_lat
            counters.stall_cycles_l2 += self._l2_lat - self._l1_lat
            return self._l2_lat
        counters.l2_misses += 1
        if self._stride_table is not None:
            self._hw_l2(pc, line, now)

        llc_set = self._llc_sets[line & self._llc_mask]
        flags = llc_set.pop(line, None)
        if flags is not None:
            llc_set[line] = flags
            counters.llc_hits += 1
            if unused:
                software = unused.pop(line, None)
                if software is not None:
                    if software:
                        counters.sw_prefetch_useful += 1
                    else:
                        counters.hw_prefetch_useful += 1
            # Inline l2.insert + l1.insert: neither has a callback.
            if len(l2_set) >= self._l2_assoc:
                del l2_set[next(iter(l2_set))]
            l2_set[line] = 0
            if len(l1_set) >= self._l1_assoc:
                del l1_set[next(iter(l1_set))]
            l1_set[line] = 0
            if self._ideal:
                return self._l1_lat
            counters.stall_cycles_llc += self._llc_lat - self._l1_lat
            return self._llc_lat
        counters.llc_misses += 1

        entry = mshr.get(line)
        if entry is not None:
            # Coalesce with the in-flight fill: wait the residual.
            residual = entry[0] - now
            if residual < 0:
                residual = 0
            software = entry[1]
            del mshr[line]
            self._fill_absent_fp(line)
            if software:
                counters.load_hit_pre_sw_pf += 1
                counters.sw_prefetch_useful += 1
            else:
                counters.hw_prefetch_useful += 1
            latency = residual if residual > self._l1_lat else self._l1_lat
            if self._ideal:
                return self._l1_lat
            counters.stall_cycles_dram += latency - self._l1_lat
            return latency

        # True miss to memory.
        counters.offcore_demand_data_rd += 1
        counters.offcore_all_data_rd += 1
        if self._has_next_line:
            candidate = line + 1
            if self._is_mapped(candidate * 64):
                self._issue_hw(candidate, now)
        self._fill_absent_fp(line)
        if self._ideal:
            return self._l1_lat
        counters.stall_cycles_dram += self._mem_lat - self._l1_lat
        return self._mem_lat

    # ------------------------------------------------------------------
    # Software prefetch: MemorySystem.prefetch with trace arms elided.
    # ------------------------------------------------------------------
    def prefetch(self, addr: int, now, pc: int) -> None:
        counters = self._counters
        counters.sw_prefetch_issued += 1
        if not self._is_mapped(addr):
            counters.sw_prefetch_dropped_unmapped += 1
            return
        mshr = self._mshr
        if mshr and now >= self.mem._mshr_next_ready:
            self._drain_fp(now)
        # == _issue_prefetch(software=True): contains() probes do not
        # refresh LRU, so plain membership tests are exact.
        line = addr >> 6
        if (
            line in self._l1_sets[line & self._l1_mask]
            or line in self._l2_sets[line & self._l2_mask]
            or line in self._llc_sets[line & self._llc_mask]
            or line in mshr
        ):
            counters.sw_prefetch_redundant += 1
            return
        if len(mshr) >= self._mshr_cap:
            counters.sw_prefetch_dropped_mshr += 1
            return
        ready = now + self._mem_lat
        mshr[line] = [ready, True]
        mem = self.mem
        if ready < mem._mshr_next_ready:
            mem._mshr_next_ready = ready
        counters.offcore_all_data_rd += 1

    # ------------------------------------------------------------------
    # Demand store: MemorySystem.store with trace arms elided.
    # ------------------------------------------------------------------
    def store(self, addr: int, now, pc: int):
        line = addr >> 6
        l1_set = self._l1_sets[line & self._l1_mask]
        counters = self._counters
        unused = self._unused
        flags = l1_set.pop(line, None)
        if flags is not None:
            l1_set[line] = flags
            if unused:
                software = unused.pop(line, None)
                if software is not None:
                    if software:
                        counters.sw_prefetch_useful += 1
                    else:
                        counters.hw_prefetch_useful += 1
            return 1
        mshr = self._mshr
        if mshr and now >= self.mem._mshr_next_ready:
            self._drain_fp(now)
        if unused:
            software = unused.pop(line, None)
            if software is not None:
                if software:
                    counters.sw_prefetch_useful += 1
                else:
                    counters.hw_prefetch_useful += 1
        entry = mshr.pop(line, None) if mshr else None
        if entry is not None:
            # The store coalesces with (and consumes) the in-flight fill.
            self._fill_absent_fp(line)
            if entry[1]:
                counters.sw_prefetch_useful += 1
            else:
                counters.hw_prefetch_useful += 1
            return 1
        llc_set = self._llc_sets[line & self._llc_mask]
        flags = llc_set.pop(line, None)
        if flags is not None:
            llc_set[line] = flags  # refresh LRU if present
        self._fill_fp(line)
        return 1


def build_load_fastpath(mem) -> DemandPort:
    """Demand-load port for ``mem`` (kept for API compatibility; the
    stacked front path lives on :meth:`MemorySystem.front`)."""
    return mem.front().load


def build_store_fastpath(mem) -> DemandPort:
    """Demand-store port for ``mem`` (kept for API compatibility)."""
    return mem.front().store
