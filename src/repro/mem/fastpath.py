"""L1 front fast path: answer L1 hits without walking the hierarchy.

The demand-access hot path of :class:`~repro.mem.hierarchy.MemorySystem`
is an L1 hit — for the evaluation suite well over 80% of loads.  The
general :meth:`MemorySystem.load` pays, on every one of those hits, a
bound-method call into :class:`SetAssociativeCache.lookup` plus the
attribute traffic of the full walk's prologue.  The closures built here
pre-resolve all of that once per machine: the L1's set array, set mask,
counters object, prefetch-usefulness side table and hit latency are
captured as closure cells, so an L1 hit costs one dict ``pop`` + one
re-insert + one counter bump.

Design notes (why this is a *view*, not a shadow table):

* The closures read the L1's set dictionaries **in place** (structural
  sharing).  Fills and evictions — including the inclusive hierarchy's
  back-invalidations — mutate those same dictionaries, so the front
  path can never go stale and needs no explicit invalidation protocol.
  A separate line-presence table was rejected because a hit must still
  refresh the L1's LRU order (a presence probe that skipped the
  re-insert would change future victim selection and break the
  bit-identical guarantee).
* Anything that is not an L1 hit falls through to the slow path
  unchanged, so miss classification, MSHR coalescing, tracing and the
  hardware prefetchers behave exactly as before.
* The fast path is **bypassed entirely while tracing is armed**
  (:meth:`MemorySystem.load_port` hands out the plain methods then), so
  the observability subsystem's bit-identical traced==untraced
  guarantees never depend on this module.

Both the fast engine (``repro.machine.blockengine``) and the translating
engine bind their demand entry points through
:meth:`MemorySystem.load_port` / :meth:`MemorySystem.store_port`; the
reference interpreter keeps calling the plain methods so it stays the
obviously-correct baseline the differential tests compare against.
"""

from __future__ import annotations

from typing import Callable

#: Demand-access signature shared by the ports: (addr, now, pc) -> latency.
DemandPort = Callable[[int, float, int], int]


def build_load_fastpath(mem) -> DemandPort:
    """Pre-bound demand-load closure for ``mem`` (an L1-hit front path).

    Bit-identical to :meth:`MemorySystem.load`: the hit path performs
    the same LRU refresh, the same ``l1_hits`` increment and the same
    prefetch-usefulness consumption check; everything else falls
    through to the full walk.
    """
    l1_sets = mem.l1.sets_view()
    set_mask = mem.l1.set_mask()
    counters = mem.counters
    unused = mem.prefetched_unused_view()
    consume = mem._consume
    l1_latency = mem._l1_lat
    slow_load = mem.load

    def load(addr: int, now, pc: int):
        line = addr >> 6
        cache_set = l1_sets[line & set_mask]
        flags = cache_set.pop(line, None)
        if flags is None:
            return slow_load(addr, now, pc)
        cache_set[line] = flags  # re-insert -> most recently used
        counters.l1_hits += 1
        if unused:
            consume(line, now)
        return l1_latency

    return load


def build_store_fastpath(mem) -> DemandPort:
    """Pre-bound demand-store closure for ``mem`` (L1-hit front path).

    Mirrors the L1-hit arm of :meth:`MemorySystem.store`; misses fall
    through to the store-buffer slow path unchanged.
    """
    l1_sets = mem.l1.sets_view()
    set_mask = mem.l1.set_mask()
    unused = mem.prefetched_unused_view()
    consume = mem._consume
    slow_store = mem.store

    def store(addr: int, now, pc: int):
        line = addr >> 6
        cache_set = l1_sets[line & set_mask]
        flags = cache_set.pop(line, None)
        if flags is None:
            return slow_store(addr, now, pc)
        cache_set[line] = flags
        if unused:
            consume(line, now)
        return 1

    return store
