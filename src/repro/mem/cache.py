"""Set-associative, LRU, line-granular cache model.

Lines are identified by ``line = byte_address >> 6``.  Each set is a dict
mapping line -> flags; Python dicts preserve insertion order, so LRU is
"pop and re-insert on hit, evict the first key when full".  Flags track
whether a line was installed by a (software/hardware) prefetch and not yet
consumed by a demand access — the bookkeeping behind the paper's accuracy
and early-eviction discussion (§2.3).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.mem.config import CacheConfig

FLAG_NONE = 0
FLAG_SW_PREFETCHED_UNUSED = 1
FLAG_HW_PREFETCHED_UNUSED = 2

EvictionCallback = Callable[[int, int], None]  # (line, flags)


class SetAssociativeCache:
    """One cache level."""

    __slots__ = ("config", "_sets", "_set_mask", "on_evict")

    def __init__(
        self,
        config: CacheConfig,
        on_evict: Optional[EvictionCallback] = None,
    ) -> None:
        self.config = config
        self._sets: list[dict[int, int]] = [dict() for _ in range(config.sets)]
        self._set_mask = config.sets - 1
        self.on_evict = on_evict

    # ------------------------------------------------------------------
    def lookup(self, line: int) -> Optional[int]:
        """Return the line's flags (and refresh LRU) or None on miss."""
        cache_set = self._sets[line & self._set_mask]
        flags = cache_set.pop(line, None)
        if flags is None:
            return None
        cache_set[line] = flags  # re-insert -> most recently used
        return flags

    def contains(self, line: int) -> bool:
        return line in self._sets[line & self._set_mask]

    def set_flags(self, line: int, flags: int) -> None:
        cache_set = self._sets[line & self._set_mask]
        if line in cache_set:
            cache_set[line] = flags

    def insert(self, line: int, flags: int = FLAG_NONE) -> None:
        """Install a line, evicting the LRU victim if the set is full."""
        cache_set = self._sets[line & self._set_mask]
        if cache_set.pop(line, None) is not None:
            cache_set[line] = flags  # was resident: refresh LRU, reset flags
            return
        if len(cache_set) >= self.config.associativity:
            victim, victim_flags = next(iter(cache_set.items()))
            del cache_set[victim]
            if self.on_evict is not None:
                self.on_evict(victim, victim_flags)
        cache_set[line] = flags

    def invalidate(self, line: int) -> None:
        self._sets[line & self._set_mask].pop(line, None)

    # ------------------------------------------------------------------
    # Structural views for the demand fast path (repro.mem.fastpath).
    # The set list and mask are fixed for the cache's lifetime — flush()
    # clears the per-set dicts in place — so a closure holding these
    # references observes every fill/evict/invalidate immediately.
    # ------------------------------------------------------------------
    def sets_view(self) -> list[dict[int, int]]:
        """The live per-set line->flags dicts (shared, not a copy)."""
        return self._sets

    def set_mask(self) -> int:
        return self._set_mask

    def flush(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_lines(self) -> list[int]:
        return [line for s in self._sets for line in s]
