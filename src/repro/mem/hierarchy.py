"""The memory hierarchy: three cache levels, fill buffers, DRAM, and
hardware prefetchers, with PMU instrumentation.

Timing model
------------
The core is in-order and blocking: a demand load pays the latency of the
level that serves it (L1 4, L2 14, LLC 44, DRAM ``llc.latency + 200``).
Prefetches are non-blocking: they allocate a fill buffer (MSHR) entry that
completes ``llc.latency + dram_latency`` cycles later in the background;
when the buffers are full the prefetch is dropped (as on real hardware).

A demand load that finds its line *in flight* coalesces with the fill
buffer entry and waits only the residual latency — and, when the entry was
allocated by a software prefetch, increments ``LOAD_HIT_PRE.SW_PF``: the
paper's *late prefetch* event (§2.3).  A prefetched line evicted from the
LLC before any demand use increments the *early prefetch* counter.

Prefetched-but-unused lines are tracked in a side table (``_unused``)
consulted on demand hits at any level, so usefulness accounting is exact
regardless of which level serves the first demand access.

The hierarchy is kept inclusive: an LLC eviction invalidates L1/L2.
"""

from __future__ import annotations

from typing import Optional

from repro.machine.pmu import Counters
from repro.mem.address import AddressSpace
from repro.mem.cache import SetAssociativeCache
from repro.mem.config import MemoryConfig
from repro.mem.hwprefetch import NextLinePrefetcher, StridePrefetcher

# MSHR entry layout: [ready_cycle, is_software_prefetch]
_READY = 0
_SOFTWARE = 1


class MemorySystem:
    """Timing-side memory model; functional data lives in AddressSpace."""

    def __init__(
        self,
        config: MemoryConfig,
        address_space: AddressSpace,
        counters: Optional[Counters] = None,
    ) -> None:
        self.config = config
        self.space = address_space
        self.counters = counters if counters is not None else Counters()

        self.llc = SetAssociativeCache(config.llc, on_evict=self._on_llc_evict)
        self.l2 = SetAssociativeCache(config.l2)
        self.l1 = SetAssociativeCache(config.l1)

        self._l1_lat = int(config.l1.latency)
        self._l2_lat = int(config.l2.latency)
        self._llc_lat = int(config.llc.latency)
        self._mem_lat = int(config.llc.latency + config.dram_latency)

        #: In-flight fills: line -> [ready_cycle, is_software_prefetch].
        #: None entries are demand-class (hardware prefetch counts too
        #: for LOAD_HIT_PRE purposes: only software entries bump it).
        self._mshr: dict[int, list] = {}
        #: Lower bound on the earliest ready_cycle in the MSHR; lets
        #: drain() skip the full scan when nothing can have completed.
        #: Removals may leave it stale-low (still a valid lower bound).
        self._mshr_next_ready: float = float("inf")
        #: Prefetched lines not yet consumed by any demand access:
        #: line -> True (software) / False (hardware).
        self._unused: dict[int, bool] = {}
        #: Optional lifecycle-event sink (repro.obs.trace.PrefetchTrace).
        #: Every hook is guarded by one ``is not None`` check on paths
        #: that already missed the L1, so tracing-off runs pay nothing
        #: on the hit fast path and one attribute load per slow event.
        self.trace = None
        #: Last cycle seen while tracing; eviction callbacks (which have
        #: no ``now`` argument) are stamped with it.
        self._trace_now: float = 0.0
        self._ideal = bool(config.ideal_prefetching)
        self._stride = StridePrefetcher(config) if config.stride_prefetcher else None
        self._next_line = (
            NextLinePrefetcher() if config.next_line_prefetcher else None
        )
        #: Lazily-built stacked L1/L2/LLC front path (repro.mem.fastpath);
        #: handed out by load_port()/store_port() when tracing is off and
        #: the single line-removal entry point for back-invalidations.
        self._front = None

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def attach_trace(self, trace) -> None:
        """Install a lifecycle-event sink (see repro.obs.trace)."""
        self.trace = trace

    def detach_trace(self) -> None:
        self.trace = None

    # ------------------------------------------------------------------
    # Demand ports: the entry points engines bind at run start.
    # ------------------------------------------------------------------
    def front(self):
        """The stacked L1/L2/LLC fast path object for this hierarchy
        (built lazily; see ``repro.mem.fastpath``)."""
        if self._front is None:
            from repro.mem.fastpath import MemoryFastPath

            self._front = MemoryFastPath(self)
        return self._front

    def load_port(self):
        """Demand-load entry point for the optimizing engines.

        Returns the pre-bound stacked L1/L2/LLC fast path (bit-identical
        to :meth:`load`; see ``repro.mem.fastpath``) — or the plain
        :meth:`load` whenever a lifecycle trace is attached, so traced
        runs take exactly the code paths the observability guarantees
        were established on.
        """
        if self.trace is not None:
            return self.load
        return self.front().load

    def store_port(self):
        """Demand-store entry point; same bypass rules as load_port()."""
        if self.trace is not None:
            return self.store
        return self.front().store

    def prefetch_port(self):
        """Software-prefetch entry point; same bypass rules as
        load_port().  Prefetch-heavy injected code (every AJ/APT-GET
        slice ends in one) pays the general :meth:`prefetch` walk per
        issue; the fast path inlines the drop checks."""
        if self.trace is not None:
            return self.prefetch
        return self.front().prefetch

    def prefetched_unused_view(self) -> dict[int, bool]:
        """The live prefetched-but-unused side table (shared, not a copy)."""
        return self._unused

    def sw_prefetch_outstanding(self) -> int:
        """Software prefetches neither consumed nor evicted yet: filled
        lines awaiting their first demand use plus fills still in
        flight.  Completes the issue-side accounting (see the counter
        invariant tests)."""
        waiting = sum(1 for software in self._unused.values() if software)
        inflight = sum(
            1 for entry in self._mshr.values() if entry[_SOFTWARE]
        )
        return waiting + inflight

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _on_llc_evict(self, line: int, flags: int) -> None:
        # Inclusive hierarchy: drop the line everywhere.  All removal
        # paths — LLC capacity evictions, hardware-prefetch fills that
        # displace a victim, store write-allocates — reach this callback
        # through SetAssociativeCache.on_evict and funnel into the fast
        # path's single invalidate_line entry point, so the stacked
        # views and the caches can never disagree.
        self.front().invalidate_line(line << 6)
        if self._unused:
            software = self._unused.pop(line, None)
            if software:
                self.counters.sw_prefetch_early_evicted += 1
                if self.trace is not None:
                    self.trace.on_evict(line, self._trace_now)

    def drain(self, now: float) -> None:
        """Complete fill-buffer entries whose data has arrived.

        Every MSHR insert charges the same DRAM latency at a monotone
        clock, so the dict's insertion order is also ready order: the
        entries due by ``now`` are exactly a prefix.  Drain that prefix
        and stop at the first still-pending entry — its ready time is
        the new next-ready bound, no full scan or re-minimize needed.
        (``FastPath._drain_fp`` relies on the same invariant.)
        """
        mshr = self._mshr
        if not mshr or now < self._mshr_next_ready:
            return
        traced = self.trace is not None
        if traced:
            self._trace_now = now
        while mshr:
            line = next(iter(mshr))
            entry = mshr[line]
            ready = entry[_READY]
            if ready > now:
                self._mshr_next_ready = ready
                return
            del mshr[line]
            software = entry[_SOFTWARE]
            self._fill(line)
            self._unused[line] = software
            if traced and software:
                self.trace.on_fill(line, ready)
        self._mshr_next_ready = float("inf")

    def _fill(self, line: int) -> None:
        self.llc.insert(line)
        self.l2.insert(line)
        self.l1.insert(line)

    def _consume(self, line: int, now) -> None:
        """A demand access touched a prefetched line: count usefulness."""
        software = self._unused.pop(line, None)
        if software is None:
            return
        if software:
            self.counters.sw_prefetch_useful += 1
            if self.trace is not None:
                self.trace.on_use(line, now, late=False)
        else:
            self.counters.hw_prefetch_useful += 1

    def _issue_prefetch(
        self, line: int, now: float, software: bool, pc: int = -1
    ) -> bool:
        """Try to start an asynchronous fill; returns True if issued."""
        counters = self.counters
        trace = self.trace if software else None
        if (
            self.l1.contains(line)
            or self.l2.contains(line)
            or self.llc.contains(line)
            or line in self._mshr
        ):
            if software:
                counters.sw_prefetch_redundant += 1
                if trace is not None:
                    trace.on_drop(pc, line, now, "redundant")
            return False
        if len(self._mshr) >= self.config.mshr_entries:
            if software:
                counters.sw_prefetch_dropped_mshr += 1
                if trace is not None:
                    trace.on_drop(pc, line, now, "mshr")
            return False
        ready = now + self._mem_lat
        self._mshr[line] = [ready, software]
        if ready < self._mshr_next_ready:
            self._mshr_next_ready = ready
        counters.offcore_all_data_rd += 1
        if not software:
            counters.hw_prefetch_issued += 1
        elif trace is not None:
            trace.on_issue(pc, line, now, ready)
        return True

    def _hardware_prefetch(self, pc: int, line: int, now: float, level: str) -> None:
        candidates: list[int] = []
        if level == "l2" and self._stride is not None:
            candidates = self._stride.observe(pc, line)
        elif level == "llc" and self._next_line is not None:
            candidates = self._next_line.observe(pc, line)
        for candidate in candidates:
            if self.space.is_mapped(candidate * 64):
                self._issue_prefetch(candidate, now, software=False)

    # ------------------------------------------------------------------
    # Demand accesses
    # ------------------------------------------------------------------
    def load(self, addr: int, now, pc: int):
        """Return the latency of a demand load at ``now``.

        In ideal-prefetching mode (§2's upper bound) classification and
        hit/miss counters run normally but the returned latency is always
        the L1 latency and no stall cycles accrue."""
        line = addr >> 6
        counters = self.counters
        ideal = self._ideal

        if self.l1.lookup(line) is not None:
            counters.l1_hits += 1
            if self._unused:
                self._consume(line, now)
            return self._l1_lat
        counters.l1_misses += 1
        self.drain(now)
        # L1 may have just been filled by the drain: reclassify as a hit.
        if self.l1.lookup(line) is not None:
            counters.l1_misses -= 1
            counters.l1_hits += 1
            if self._unused:
                self._consume(line, now)
            return self._l1_lat

        if self.l2.lookup(line) is not None:
            counters.l2_hits += 1
            if self._unused:
                self._consume(line, now)
            self.l1.insert(line)
            if ideal:
                return self._l1_lat
            counters.stall_cycles_l2 += self._l2_lat - self._l1_lat
            return self._l2_lat
        counters.l2_misses += 1
        self._hardware_prefetch(pc, line, now, "l2")

        if self.llc.lookup(line) is not None:
            counters.llc_hits += 1
            if self._unused:
                self._consume(line, now)
            self.l2.insert(line)
            self.l1.insert(line)
            if self.trace is not None:
                self.trace.on_demand(pc, line, now, self._llc_lat, "llc")
            if ideal:
                return self._l1_lat
            counters.stall_cycles_llc += self._llc_lat - self._l1_lat
            return self._llc_lat
        counters.llc_misses += 1

        entry = self._mshr.get(line)
        if entry is not None:
            # Coalesce with the in-flight fill: wait the residual latency.
            residual = max(entry[_READY] - now, 0)
            software = entry[_SOFTWARE]
            del self._mshr[line]
            if self.trace is not None:
                self._trace_now = now
            self._fill(line)
            if software:
                counters.load_hit_pre_sw_pf += 1
                counters.sw_prefetch_useful += 1
                if self.trace is not None:
                    self.trace.on_use(line, now, late=True)
                    self.trace.on_demand(pc, line, now, residual, "coalesced")
            else:
                counters.hw_prefetch_useful += 1
            latency = max(residual, self._l1_lat)
            if ideal:
                return self._l1_lat
            counters.stall_cycles_dram += latency - self._l1_lat
            return latency

        # True miss to memory.
        counters.offcore_demand_data_rd += 1
        counters.offcore_all_data_rd += 1
        self._hardware_prefetch(pc, line, now, "llc")
        if self.trace is not None:
            self._trace_now = now
            self.trace.on_demand(pc, line, now, self._mem_lat, "dram")
        self._fill(line)
        if ideal:
            return self._l1_lat
        counters.stall_cycles_dram += self._mem_lat - self._l1_lat
        return self._mem_lat

    def store(self, addr: int, now, pc: int):
        """Stores retire through a store buffer: cheap even on a miss.

        A missing line is write-allocated in the background (no stall, no
        offcore *read* accounting — the paper's counters measure data
        reads).
        """
        line = addr >> 6
        if self.l1.lookup(line) is not None:
            if self._unused:
                self._consume(line, now)
            return 1
        self.drain(now)
        if self._unused:
            self._consume(line, now)
        if self.trace is not None:
            self._trace_now = now
        entry = self._mshr.pop(line, None)
        if entry is not None:
            # The store coalesces with (and consumes) the in-flight fill.
            self._fill(line)
            if entry[_SOFTWARE]:
                self.counters.sw_prefetch_useful += 1
                if self.trace is not None:
                    self.trace.on_use(line, now, late=True)
            else:
                self.counters.hw_prefetch_useful += 1
            return 1
        self.llc.lookup(line)  # refresh LRU if present
        self._fill(line)
        return 1

    def prefetch(self, addr: int, now: float, pc: int) -> None:
        """Software prefetch: never faults, may be dropped."""
        counters = self.counters
        counters.sw_prefetch_issued += 1
        if not self.space.is_mapped(addr):
            counters.sw_prefetch_dropped_unmapped += 1
            if self.trace is not None:
                self.trace.on_drop(pc, addr >> 6, now, "unmapped")
            return
        self.drain(now)
        self._issue_prefetch(addr >> 6, now, software=True, pc=pc)

    # ------------------------------------------------------------------
    def inflight(self) -> int:
        return len(self._mshr)

    def flush(self) -> None:
        """Drop all cached lines and in-flight fills (cold-cache reset).

        Traced prefetches still open at the flush stay open in the trace
        and roll up as *unused* — a cold-cache reset wastes them exactly
        like an eviction would.
        """
        self.l1.flush()
        self.l2.flush()
        self.llc.flush()
        self._mshr.clear()
        self._mshr_next_ready = float("inf")
        self._unused.clear()
