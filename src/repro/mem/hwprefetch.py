"""Hardware prefetcher models: per-PC stride and next-line.

These are the "simple prefetchers implemented in today's hardware" the
paper contrasts against (§1): they capture strided/streaming patterns but
cannot follow indirect accesses like ``T[B[i]]`` whose successive lines are
uncorrelated.  Both emit candidate prefetch lines; the hierarchy decides
whether to issue them (MSHR space, mapped addresses).
"""

from __future__ import annotations

from repro.mem.config import MemoryConfig


class StridePrefetcher:
    """Per-PC stride detector (Intel L2 "adjacent/stream"-style).

    Keeps a small direct-mapped table keyed by load PC holding the last
    line touched, the last observed stride, and a saturating confidence.
    Once confidence reaches the threshold it predicts ``degree`` lines
    ahead along the stride.
    """

    __slots__ = ("entries", "threshold", "degree", "_table")

    def __init__(self, config: MemoryConfig) -> None:
        self.entries = config.stride_table_entries
        self.threshold = config.stride_confidence
        self.degree = config.stride_degree
        # pc_slot -> (pc, last_line, stride, confidence)
        self._table: dict[int, tuple[int, int, int, int]] = {}

    def observe(self, pc: int, line: int) -> list[int]:
        """Record a demand miss; return lines to prefetch (possibly empty)."""
        slot = pc % self.entries
        entry = self._table.get(slot)
        if entry is None or entry[0] != pc:
            self._table[slot] = (pc, line, 0, 0)
            return []
        _, last_line, stride, confidence = entry
        new_stride = line - last_line
        if new_stride == 0:
            return []
        if new_stride == stride:
            confidence = min(confidence + 1, self.threshold + 2)
        else:
            stride = new_stride
            confidence = 1
        self._table[slot] = (pc, line, stride, confidence)
        if confidence >= self.threshold:
            return [line + stride * (i + 1) for i in range(self.degree)]
        return []


class NextLinePrefetcher:
    """LLC next-line prefetcher: on a demand miss to line L, fetch L+1."""

    __slots__ = ()

    def observe(self, pc: int, line: int) -> list[int]:
        return [line + 1]
