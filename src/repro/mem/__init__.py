"""Memory subsystem: address space, caches, MSHRs, hardware prefetchers."""

from repro.mem.address import LINE_BYTES, AddressSpace, MemoryError_, Segment
from repro.mem.batch import CellState, shared_space, space_mismatch
from repro.mem.cache import (
    FLAG_HW_PREFETCHED_UNUSED,
    FLAG_NONE,
    FLAG_SW_PREFETCHED_UNUSED,
    SetAssociativeCache,
)
from repro.mem.config import CacheConfig, MemoryConfig
from repro.mem.fastpath import (
    MemoryFastPath,
    build_load_fastpath,
    build_store_fastpath,
)
from repro.mem.hierarchy import MemorySystem
from repro.mem.hwprefetch import NextLinePrefetcher, StridePrefetcher

__all__ = [
    "AddressSpace",
    "CacheConfig",
    "CellState",
    "FLAG_HW_PREFETCHED_UNUSED",
    "FLAG_NONE",
    "FLAG_SW_PREFETCHED_UNUSED",
    "LINE_BYTES",
    "MemoryConfig",
    "MemoryError_",
    "MemoryFastPath",
    "MemorySystem",
    "NextLinePrefetcher",
    "Segment",
    "SetAssociativeCache",
    "StridePrefetcher",
    "build_load_fastpath",
    "build_store_fastpath",
    "shared_space",
    "space_mismatch",
]
