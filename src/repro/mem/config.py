"""Memory-hierarchy configuration (the reproduction's Table 2).

The defaults model the paper's Xeon Gold 5218 scaled down by 8x in cache
capacity so that simulated working sets (and hence simulation time) stay
laptop-sized while preserving the working-set : LLC ratio.  Latencies are
kept at realistic Skylake-server-class cycle counts because the *ratios*
between levels are what drive prefetch timeliness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.address import LINE_BYTES


@dataclass(frozen=True)
class CacheConfig:
    """One cache level."""

    name: str
    size_bytes: int
    associativity: int
    latency: int  # access latency in cycles, paid when this level serves

    @property
    def lines(self) -> int:
        return self.size_bytes // LINE_BYTES

    @property
    def sets(self) -> int:
        return self.lines // self.associativity

    def __post_init__(self) -> None:
        if self.size_bytes % LINE_BYTES:
            raise ValueError(f"{self.name}: size must be a multiple of 64B")
        if self.lines % self.associativity:
            raise ValueError(f"{self.name}: lines not divisible by assoc")
        sets = self.lines // self.associativity
        if sets & (sets - 1):
            raise ValueError(f"{self.name}: set count must be a power of two")


@dataclass(frozen=True)
class MemoryConfig:
    """Full hierarchy: three cache levels, MSHRs, DRAM, HW prefetchers."""

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1D", 8 * 1024, 8, 4)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", 128 * 1024, 8, 14)
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig("LLC", 2 * 1024 * 1024, 16, 44)
    )
    dram_latency: int = 200
    #: Fill buffers / miss-status-holding registers shared by demand misses
    #: and in-flight prefetches; prefetches are dropped when full.
    mshr_entries: int = 12
    #: Hardware stride prefetcher at L2 (per-PC stride table).
    stride_prefetcher: bool = True
    stride_table_entries: int = 64
    stride_confidence: int = 2
    stride_degree: int = 2
    #: Hardware next-line prefetcher at the LLC.
    next_line_prefetcher: bool = True
    #: Ideal-prefetcher mode (paper §2's upper bound): every demand load
    #: is served at L1 latency as if a perfect prefetcher had covered all
    #: misses in time.  Counters still record where the load *would* have
    #: been served, so coverage math stays meaningful.
    ideal_prefetching: bool = False

    def scaled(self, factor: int) -> "MemoryConfig":
        """Return a copy with cache capacities divided by ``factor``.

        Used by the 'tiny' experiment scale so unit tests shrink datasets
        and caches together.
        """
        def shrink(cache: CacheConfig) -> CacheConfig:
            size = max(cache.size_bytes // factor, cache.associativity * LINE_BYTES)
            return CacheConfig(cache.name, size, cache.associativity, cache.latency)

        from dataclasses import replace

        return replace(
            self, l1=shrink(self.l1), l2=shrink(self.l2), llc=shrink(self.llc)
        )
