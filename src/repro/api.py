"""``repro.api`` — the stable v1 library surface.

Every entry point takes a frozen, keyword-only *request* dataclass and
returns a frozen *result* dataclass whose payload is plain JSON-able
data (``to_payload``/``from_payload`` round-trip losslessly through
``json``).  Argument order is uniformly ``(workload, scale)``, and every
request carries an explicit ``engine=`` knob (``turbo`` | ``fast`` |
``translate`` | ``reference``; ``None`` means the service's configured
default).

Three equivalent call shapes::

    import repro.api as api

    # 1. Request objects (the canonical, versioned shape).
    result = api.execute(api.RunRequest(workload="BFS", scale="small"))

    # 2. Convenience wrappers building the requests for you.
    result = api.run("BFS", "small", scheme="apt-get")

    # 3. The service facade (caching, parallelism) used directly.
    service = api.get_service()
    comparison = service.compare_suite("small")

Results deliberately store payload *data*, not live objects: a result
can be persisted, shipped across a process boundary, and rehydrated
with ``from_payload`` without losing anything, and rich objects
(:class:`ExecutionProfile`, :class:`HintSet`, :class:`SiteReport`) are
reconstructed on demand by the accessor methods.

Compatibility: this module is the v1 contract.  Additions are allowed;
renames/removals require a v2.  The pre-v1 ``name=`` keyword shims have
been retired: passing ``name=`` to a ``TuningService`` method now raises
``ValueError`` with a migration hint (pass ``workload=`` instead).
Engine aliases (``Machine(engine="interpret")``) still normalize.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Optional

from repro.core.hints import HintSet
from repro.experiments.runner import SchemeRun, WorkloadComparison
from repro.machine.config import ENGINES, normalize_engine
from repro.obs.sites import SiteReport
from repro.profiling.profile import ExecutionProfile
from repro.service.api import (
    SWEEP_SCHEMES,
    TuningService,
    configure_service,
    get_service,
    profile_from_payload,
    profile_to_payload,
    run_from_payload,
    run_to_payload,
    sweep_cell_grid,
)

API_VERSION = 1


class _Payload:
    """Shared payload plumbing: versioned, JSON-safe dict round-trips."""

    def to_payload(self) -> dict:
        payload: dict = {"kind": type(self).__name__, "v": API_VERSION}
        payload.update(asdict(self))
        return payload

    @classmethod
    def from_payload(cls, payload: dict):
        # Payloads cross process boundaries, so every malformed shape is
        # a ValueError with the offending detail — never a bare
        # TypeError/AttributeError from dataclass plumbing.
        if not isinstance(payload, dict):
            raise ValueError(
                f"payload must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        kind = payload.get("kind", cls.__name__)
        if kind != cls.__name__:
            raise ValueError(f"payload is a {kind}, expected {cls.__name__}")
        version = payload.get("v", API_VERSION)
        if version != API_VERSION:
            raise ValueError(f"unsupported payload version {version!r}")
        data = {
            key: value
            for key, value in payload.items()
            if key not in ("kind", "v")
        }
        known = {f.name for f in dataclasses.fields(cls)}
        unexpected = sorted(set(data) - known)
        if unexpected:
            raise ValueError(
                f"{cls.__name__} payload has unexpected field(s) "
                f"{unexpected}; known fields are {sorted(known)}"
            )
        try:
            return cls(**data)
        except TypeError as error:  # e.g. a missing required field
            raise ValueError(
                f"malformed {cls.__name__} payload: {error}"
            ) from error

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str):
        return cls.from_payload(json.loads(text))


def _check_engine(engine: Optional[str]) -> Optional[str]:
    return None if engine is None else normalize_engine(engine)


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass(frozen=True, kw_only=True)
class ProfileRequest(_Payload):
    """Ask for a profiling run + APT-GET hint analysis (cached).

    ``trace`` is an optional client-supplied correlation id: the
    ``repro.serve`` queue stamps it on the job (minting one when
    absent) so the job's telemetry spans share the caller's trace.  It
    never participates in cache/dedup keys — two requests differing
    only in ``trace`` are the same work.
    """

    workload: str
    scale: str = "small"
    engine: Optional[str] = None
    trace: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "engine", _check_engine(self.engine))


@dataclass(frozen=True, kw_only=True)
class RunRequest(_Payload):
    """Ask for one measured scheme run (cached).

    ``scheme`` is ``baseline``, ``aj`` (fixed-distance injection, uses
    ``distance``) or ``apt-get`` (profile-guided hints).
    """

    workload: str
    scale: str = "small"
    scheme: str = "baseline"
    distance: int = 32
    engine: Optional[str] = None
    trace: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "engine", _check_engine(self.engine))
        if self.scheme not in ("baseline", "aj", "apt-get"):
            raise ValueError(
                f"unknown scheme {self.scheme!r}; "
                "expected baseline, aj, or apt-get"
            )


@dataclass(frozen=True, kw_only=True)
class SiteReportRequest(_Payload):
    """Ask for per-injection-site timeliness rollups (cached).

    ``fixed_distance=None`` measures the workload's profile-guided
    hints; an integer forces every hint to the inner site at that
    distance (the naive-compiler baseline).
    """

    workload: str
    scale: str = "small"
    fixed_distance: Optional[int] = None
    engine: Optional[str] = None
    trace: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "engine", _check_engine(self.engine))


@dataclass(frozen=True, kw_only=True)
class SuiteRequest(_Payload):
    """Ask for the baseline/A&J/APT-GET suite comparison (cached,
    computed in parallel across ``jobs`` workers on misses)."""

    scale: str = "small"
    aj_distance: int = 32
    workloads: Optional[tuple] = None
    jobs: Optional[int] = None
    engine: Optional[str] = None
    trace: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "engine", _check_engine(self.engine))
        if self.workloads is not None:
            object.__setattr__(self, "workloads", tuple(self.workloads))


@dataclass(frozen=True, kw_only=True)
class SweepRequest(_Payload):
    """Ask for a batched multi-config sweep over one workload.

    The grid is the cross product of three axes: ``schemes`` (any
    subset of ``baseline`` | ``aj`` | ``apt-get``), ``distances``
    (prefetch distances; applies only to ``aj`` cells) and
    ``cache_scales`` (integer divisors shrinking every cache capacity
    in the base memory config; ``1`` is the base hierarchy, ``2``
    halves L1/L2/LLC).  Axes are
    canonicalized on construction — sorted, deduplicated, and the
    distance axis dropped when no ``aj`` cells exist — so two requests
    naming the same grid in different orders are *equal*, serialize to
    the same payload, and share one dedup key.

    Each cell is cached under exactly the key the equivalent single
    :class:`RunRequest` would use, so sweeps and single runs share
    artifacts in both directions.
    """

    workload: str
    scale: str = "small"
    schemes: tuple = ("aj",)
    distances: tuple = (4, 8, 16, 32, 64)
    cache_scales: tuple = (1,)
    engine: Optional[str] = None
    trace: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "engine", _check_engine(self.engine))
        if isinstance(self.schemes, str):
            raise ValueError(
                "schemes must be a sequence of scheme names, "
                f"got the bare string {self.schemes!r}"
            )
        schemes = tuple(sorted(set(self.schemes)))
        distances = tuple(sorted({int(d) for d in self.distances}))
        cache_scales = tuple(sorted({int(s) for s in self.cache_scales}))
        if "aj" not in schemes:
            distances = ()
        # Validates the axes (unknown schemes, empty axes, bad values)
        # with the exact rules the executor applies.
        sweep_cell_grid(schemes, distances, cache_scales)
        object.__setattr__(self, "schemes", schemes)
        object.__setattr__(self, "distances", distances)
        object.__setattr__(self, "cache_scales", cache_scales)

    def cells(self) -> list[tuple]:
        """The canonical ``(scheme, distance, cache_scale)`` cell list."""
        return sweep_cell_grid(
            self.schemes, self.distances, self.cache_scales
        )


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass(frozen=True, kw_only=True)
class ProfileResult(_Payload):
    """Profile + hints for one workload; ``engine`` is the resolved name."""

    workload: str
    scale: str
    engine: str
    profile: dict = field(repr=False)
    hints: dict = field(repr=False)

    def execution_profile(self) -> ExecutionProfile:
        profile, _ = profile_from_payload(
            {"profile": self.profile["profile"],
             "counters": self.profile["counters"],
             "hints": self.hints}
        )
        return profile

    def hint_set(self) -> HintSet:
        return HintSet.from_json(json.dumps(self.hints))


@dataclass(frozen=True, kw_only=True)
class RunResult(_Payload):
    """One measured scheme run; counters are the run's deltas."""

    workload: str
    scale: str
    engine: str
    scheme: str
    value: int
    counters: dict = field(repr=False)
    run: dict = field(repr=False)

    @property
    def cycles(self) -> float:
        return self.counters.get("cycles", 0.0)

    def scheme_run(self) -> SchemeRun:
        return run_from_payload(self.run)


@dataclass(frozen=True, kw_only=True)
class SiteReportResult(_Payload):
    """Per-site timeliness rollups from one traced run."""

    workload: str
    scale: str
    engine: str
    fixed_distance: Optional[int]
    sites: dict = field(repr=False)

    def reports(self) -> dict[str, SiteReport]:
        return {
            label: SiteReport.from_dict(raw)
            for label, raw in self.sites.items()
        }


@dataclass(frozen=True, kw_only=True)
class SuiteResult(_Payload):
    """Suite-wide comparison; ``rows`` maps workload -> payload."""

    scale: str
    engine: str
    aj_distance: int
    workloads: tuple
    rows: dict = field(repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "workloads", tuple(self.workloads))

    def comparisons(self) -> dict[str, WorkloadComparison]:
        out: dict[str, WorkloadComparison] = {}
        for name in self.workloads:
            row = self.rows[name]
            comparison = WorkloadComparison(
                workload=name, error=row.get("error")
            )
            for scheme, payload in row.get("runs", {}).items():
                comparison.runs[scheme] = run_from_payload(payload)
            out[name] = comparison
        return out


@dataclass(frozen=True, kw_only=True)
class SweepResult(_Payload):
    """A measured config grid; one entry in ``cells`` per grid cell.

    Each cell dict carries its coordinates (``scheme``, ``distance``,
    ``cache_scale``), the full run payload (``run``, same shape a
    :class:`RunResult` stores), and provenance flags: ``cached`` (came
    from the artifact store) and ``batched`` (executed in the batched
    pass; ``None`` for cached cells, ``False`` for per-cell fallback).
    ``execution`` summarizes the run: cached/computed counts and one
    record per batch group with its fallback reason, if any.
    """

    workload: str
    scale: str
    engine: str
    schemes: tuple
    distances: tuple
    cache_scales: tuple
    cells: list = field(repr=False)
    execution: dict = field(repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "schemes", tuple(self.schemes))
        object.__setattr__(self, "distances", tuple(self.distances))
        object.__setattr__(
            self, "cache_scales", tuple(self.cache_scales)
        )

    def cell(
        self,
        scheme: str,
        distance: Optional[int] = None,
        cache_scale: int = 1,
    ) -> dict:
        """The cell dict at the given grid coordinates."""
        if scheme != "aj":
            distance = None
        for entry in self.cells:
            if (
                entry["scheme"] == scheme
                and entry["distance"] == distance
                and entry["cache_scale"] == cache_scale
            ):
                return entry
        raise KeyError(
            f"no sweep cell ({scheme!r}, {distance!r}, {cache_scale!r})"
        )

    def scheme_run(
        self,
        scheme: str,
        distance: Optional[int] = None,
        cache_scale: int = 1,
    ) -> SchemeRun:
        """Rehydrate one cell's run as a live :class:`SchemeRun`."""
        return run_from_payload(
            self.cell(scheme, distance, cache_scale)["run"]
        )

    def cycles(self) -> dict[tuple, float]:
        """Grid coordinates -> measured cycles, for quick plotting."""
        return {
            (
                entry["scheme"],
                entry["distance"],
                entry["cache_scale"],
            ): entry["run"]["counters"].get("cycles", 0.0)
            for entry in self.cells
        }


#: Request type -> handler name; the execute() dispatch table.
_REQUEST_TYPES = (
    ProfileRequest,
    RunRequest,
    SiteReportRequest,
    SuiteRequest,
    SweepRequest,
)

#: Payload ``kind`` -> dataclass, for the wire (the ``repro.serve`` HTTP
#: boundary and the job journal both carry bare payload dicts).
REQUEST_KINDS = {cls.__name__: cls for cls in _REQUEST_TYPES}
RESULT_KINDS = {
    cls.__name__: cls
    for cls in (
        ProfileResult,
        RunResult,
        SiteReportResult,
        SuiteResult,
        SweepResult,
    )
}


def request_from_payload(payload: dict):
    """Rehydrate any v1 *request* payload by its ``kind`` field.

    This is the single deserialization point for the HTTP front end and
    the job queue; every malformed shape raises ``ValueError`` with the
    offending detail (mapped to a 400 at the HTTP boundary).
    """
    return _from_payload_by_kind(payload, REQUEST_KINDS, "request")


def result_from_payload(payload: dict):
    """Rehydrate any v1 *result* payload by its ``kind`` field."""
    return _from_payload_by_kind(payload, RESULT_KINDS, "result")


def _from_payload_by_kind(payload, kinds: dict, what: str):
    if not isinstance(payload, dict):
        raise ValueError(
            f"{what} payload must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    kind = payload.get("kind")
    cls = kinds.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown {what} kind {kind!r}; expected one of {sorted(kinds)}"
        )
    return cls.from_payload(payload)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def execute(
    request,
    service: Optional[TuningService] = None,
):
    """Run one v1 request against a service (default: the process-wide
    one) and return the matching result dataclass."""
    service = service if service is not None else get_service()
    if isinstance(request, ProfileRequest):
        profile_obj, hints = service.profile(
            request.workload, request.scale, engine=request.engine
        )
        payload = profile_to_payload(profile_obj, hints)
        return ProfileResult(
            workload=request.workload,
            scale=request.scale,
            engine=service._config_for(request.engine).engine,
            profile={
                "profile": payload["profile"],
                "counters": payload["counters"],
            },
            hints=payload["hints"],
        )
    if isinstance(request, RunRequest):
        run_obj = service.run(
            request.workload,
            request.scale,
            scheme=request.scheme,
            distance=request.distance,
            engine=request.engine,
        )
        payload = run_to_payload(run_obj)
        return RunResult(
            workload=request.workload,
            scale=request.scale,
            engine=service._config_for(request.engine).engine,
            scheme=request.scheme,
            value=run_obj.result.value,
            counters=payload["counters"],
            run=payload,
        )
    if isinstance(request, SiteReportRequest):
        reports = service.site_report(
            request.workload,
            request.scale,
            fixed_distance=request.fixed_distance,
            engine=request.engine,
        )
        return SiteReportResult(
            workload=request.workload,
            scale=request.scale,
            engine=service._config_for(request.engine).engine,
            fixed_distance=request.fixed_distance,
            sites={
                label: report.to_dict()
                for label, report in reports.items()
            },
        )
    if isinstance(request, SuiteRequest):
        comparisons = service.compare_suite(
            scale=request.scale,
            aj_distance=request.aj_distance,
            names=request.workloads,
            jobs=request.jobs,
            engine=request.engine,
        )
        rows: dict = {}
        for name, comparison in comparisons.items():
            rows[name] = {
                "error": comparison.error,
                "runs": {
                    scheme: run_to_payload(run)
                    for scheme, run in comparison.runs.items()
                },
            }
        return SuiteResult(
            scale=request.scale,
            engine=service._config_for(request.engine).engine,
            aj_distance=request.aj_distance,
            workloads=tuple(comparisons),
            rows=rows,
        )
    if isinstance(request, SweepRequest):
        payload = service.sweep(
            request.workload,
            request.scale,
            schemes=request.schemes,
            distances=request.distances,
            cache_scales=request.cache_scales,
            engine=request.engine,
        )
        return SweepResult(
            workload=request.workload,
            scale=request.scale,
            engine=payload["engine"],
            schemes=request.schemes,
            distances=request.distances,
            cache_scales=request.cache_scales,
            cells=payload["cells"],
            execution=payload["execution"],
        )
    raise TypeError(
        f"unknown request type {type(request).__name__}; "
        f"expected one of {[t.__name__ for t in _REQUEST_TYPES]}"
    )


# ----------------------------------------------------------------------
# Convenience wrappers: positional (workload, scale), keyword the rest.
# ----------------------------------------------------------------------
def profile(
    workload: str,
    scale: str = "small",
    *,
    engine: Optional[str] = None,
    service: Optional[TuningService] = None,
) -> ProfileResult:
    return execute(
        ProfileRequest(workload=workload, scale=scale, engine=engine),
        service=service,
    )


def run(
    workload: str,
    scale: str = "small",
    *,
    scheme: str = "baseline",
    distance: int = 32,
    engine: Optional[str] = None,
    service: Optional[TuningService] = None,
) -> RunResult:
    return execute(
        RunRequest(
            workload=workload,
            scale=scale,
            scheme=scheme,
            distance=distance,
            engine=engine,
        ),
        service=service,
    )


def site_report(
    workload: str,
    scale: str = "small",
    *,
    fixed_distance: Optional[int] = None,
    engine: Optional[str] = None,
    service: Optional[TuningService] = None,
) -> SiteReportResult:
    return execute(
        SiteReportRequest(
            workload=workload,
            scale=scale,
            fixed_distance=fixed_distance,
            engine=engine,
        ),
        service=service,
    )


def sweep(
    workload: str,
    scale: str = "small",
    *,
    schemes: tuple = ("aj",),
    distances: tuple = (4, 8, 16, 32, 64),
    cache_scales: tuple = (1,),
    engine: Optional[str] = None,
    service: Optional[TuningService] = None,
) -> SweepResult:
    return execute(
        SweepRequest(
            workload=workload,
            scale=scale,
            schemes=schemes,
            distances=distances,
            cache_scales=cache_scales,
            engine=engine,
        ),
        service=service,
    )


def compare_suite(
    scale: str = "small",
    *,
    aj_distance: int = 32,
    workloads: Optional[tuple] = None,
    jobs: Optional[int] = None,
    engine: Optional[str] = None,
    service: Optional[TuningService] = None,
) -> SuiteResult:
    return execute(
        SuiteRequest(
            scale=scale,
            aj_distance=aj_distance,
            workloads=workloads,
            jobs=jobs,
            engine=engine,
        ),
        service=service,
    )


__all__ = [
    "API_VERSION",
    "ENGINES",
    "REQUEST_KINDS",
    "RESULT_KINDS",
    "SWEEP_SCHEMES",
    "ProfileRequest",
    "ProfileResult",
    "RunRequest",
    "RunResult",
    "SiteReportRequest",
    "SiteReportResult",
    "SuiteRequest",
    "SuiteResult",
    "SweepRequest",
    "SweepResult",
    "TuningService",
    "compare_suite",
    "configure_service",
    "execute",
    "get_service",
    "profile",
    "request_from_payload",
    "result_from_payload",
    "run",
    "site_report",
    "sweep",
    "sweep_cell_grid",
]
