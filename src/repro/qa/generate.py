"""Seeded random IR-program generator (the fuzzer's front end).

A generated program is fully described by a plain-JSON **spec** — a
recipe of functions, loop nests, and body statements — and
:func:`build_program` turns a spec into a verifier-clean, finalized
``(module, space)`` pair *deterministically* (the spec's ``seed`` only
drives data-array contents).  That split is what makes the rest of the
QA subsystem work:

* the corpus stores specs, so every shrunk failure replays bit-exactly
  without pickling IR objects;
* the shrinker delta-debugs the spec (drop statements, unnest loops,
  shrink trip counts) and rebuilds after every candidate edit;
* two builds of the same spec are structurally identical, so every
  engine can be handed its own fresh address space.

Generated shapes cover the constructs the engines and passes special-
case: single and nested loops, multi-latch loops (two back-edges into
one header, giving 3-incoming PHIs), direct and indirect loads (the
paper's delinquent pattern ``T[B[i]]``), stores, explicit PREFETCHes,
WORK kernels, CMP/SELECT chains, and calls to helper functions.

Spec grammar (all plain JSON)::

    {"schema": 1, "seed": int,
     "data_elems": pow2, "target_elems": pow2,
     "functions": [                  # helpers first, "main" last
        {"name": str, "params": [str...], "body": [stmt...]}]}

    stmt := {"kind": "loop", "trip": int>=1, "multi_latch": bool,
             "body": [stmt...]}
          | {"kind": "alu", "op": <ALU_OPS>, "rhs": "iv" | int}
          | {"kind": "cmpsel", "rhs": "iv" | int}
          | {"kind": "load"} | {"kind": "indirect"}
          | {"kind": "store"} | {"kind": "prefetch"}
          | {"kind": "work", "amount": int>=1}
          | {"kind": "call", "callee": str}

Loops are do-while shaped (the body always runs once), matching every
loop the workload suite builds.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Optional

from repro.ir.builder import IRBuilder
from repro.ir.nodes import Module
from repro.ir.verifier import verify_module
from repro.mem.address import AddressSpace

SPEC_SCHEMA = 1

#: Rolling-value ALU vocabulary (value = op(value, rhs)).
ALU_OPS = (
    "add", "sub", "mul", "div", "rem", "and", "or", "xor",
    "shl", "shr", "min", "max",
)

#: Value mask applied once per loop body so values stay 32-bit-ish and
#: arithmetic cost stays flat no matter how deep the nest runs.
VALUE_MASK = (1 << 32) - 1


@dataclass(frozen=True)
class GeneratorConfig:
    """Size/shape knobs for :func:`generate_spec`.

    Defaults are tuned so one program costs a few thousand simulated
    instructions — small enough that a 50-program differential budget
    (3 engines x tracing on/off x 3 schemes) stays a CI smoke test.
    """

    max_helpers: int = 2          #: callable leaf functions
    max_top_loops: int = 2        #: top-level loops in main
    max_depth: int = 2            #: loop nesting depth
    max_ops: int = 7              #: statements per body
    max_trip: int = 18            #: top-level trip counts
    max_inner_trip: int = 6       #: trip counts at depth >= 1
    data_elems: int = 1024        #: direct-load array (power of two)
    target_elems: int = 2048      #: indirect-target array (power of two)
    allow_calls: bool = True
    allow_multi_latch: bool = True
    allow_stores: bool = True
    allow_prefetch: bool = True


DEFAULT_CONFIG = GeneratorConfig()


# ----------------------------------------------------------------------
# Spec generation
# ----------------------------------------------------------------------
def _gen_stmts(
    rng: random.Random,
    config: GeneratorConfig,
    depth: int,
    helpers: list[str],
) -> list[dict]:
    statements: list[dict] = []
    for _ in range(rng.randint(1, config.max_ops)):
        roll = rng.random()
        if roll < 0.10 and depth < config.max_depth:
            statements.append(_gen_loop(rng, config, depth + 1, helpers))
        elif roll < 0.18:
            statements.append({"kind": "indirect"})
        elif roll < 0.26:
            statements.append({"kind": "load"})
        elif roll < 0.32 and config.allow_stores:
            statements.append({"kind": "store"})
        elif roll < 0.37 and config.allow_prefetch:
            statements.append({"kind": "prefetch"})
        elif roll < 0.42:
            statements.append({"kind": "work", "amount": rng.randint(1, 6)})
        elif roll < 0.47 and helpers:
            statements.append(
                {"kind": "call", "callee": rng.choice(helpers)}
            )
        elif roll < 0.54:
            statements.append(
                {"kind": "cmpsel", "rhs": _gen_rhs(rng, depth)}
            )
        else:
            op = rng.choice(ALU_OPS)
            statements.append(
                {"kind": "alu", "op": op, "rhs": _gen_alu_rhs(rng, op, depth)}
            )
    return statements


def _gen_rhs(rng: random.Random, depth: int):
    if depth > 0 and rng.random() < 0.5:
        return "iv"
    return rng.randint(0, 63)


def _gen_alu_rhs(rng: random.Random, op: str, depth: int):
    if op in ("shl", "shr"):
        return rng.randint(0, 4)  # bounded shifts keep values small
    if op in ("div", "rem"):
        return rng.randint(1, 9)  # never divide by zero
    return _gen_rhs(rng, depth)


def _gen_loop(
    rng: random.Random,
    config: GeneratorConfig,
    depth: int,
    helpers: list[str],
) -> dict:
    trip_cap = config.max_trip if depth <= 1 else config.max_inner_trip
    return {
        "kind": "loop",
        "trip": rng.randint(1, max(1, trip_cap)),
        "multi_latch": config.allow_multi_latch and rng.random() < 0.25,
        "body": _gen_stmts(rng, config, depth, helpers),
    }


def generate_spec(
    seed: int, config: Optional[GeneratorConfig] = None
) -> dict:
    """Generate one program spec from ``seed`` (pure: same seed + config
    -> byte-identical spec)."""
    config = config or DEFAULT_CONFIG
    rng = random.Random(seed)
    functions: list[dict] = []
    helper_names: list[str] = []
    if config.allow_calls:
        for index in range(rng.randint(0, config.max_helpers)):
            name = f"helper{index}"
            body: list[dict] = []
            if rng.random() < 0.8:
                body.append(_gen_loop(rng, config, 1, []))
            body.extend(_gen_stmts(rng, config, 0, []))
            functions.append(
                {"name": name, "params": ["p0"], "body": body}
            )
            helper_names.append(name)

    main_body: list[dict] = []
    main_body.extend(_gen_stmts(rng, config, 0, helper_names))
    for _ in range(rng.randint(1, config.max_top_loops)):
        main_body.append(_gen_loop(rng, config, 1, helper_names))
    functions.append({"name": "main", "params": [], "body": main_body})

    return {
        "schema": SPEC_SCHEMA,
        "seed": rng.randint(0, 2**31),
        "data_elems": config.data_elems,
        "target_elems": config.target_elems,
        "functions": functions,
    }


def spec_digest(spec: dict) -> str:
    """Stable content digest of a spec (corpus file naming)."""
    canonical = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


# ----------------------------------------------------------------------
# Spec -> (module, space)
# ----------------------------------------------------------------------
class _Emitter:
    """Builds one function from its spec; tracks fresh block names and
    the loop induction variables currently in scope."""

    def __init__(self, b: IRBuilder, segments: dict) -> None:
        self.b = b
        self.segments = segments
        self._next_block = 0

    def fresh_block(self, tag: str) -> str:
        name = f"b{self._next_block}.{tag}"
        self._next_block += 1
        return name

    # -- operand helpers ------------------------------------------------
    @staticmethod
    def _iv_or(ivs: list, default: int):
        """Innermost induction variable, or a constant outside loops
        (shrinker-unnested bodies may reference 'iv' at depth 0)."""
        return ivs[-1] if ivs else default

    def _resolve_rhs(self, rhs, ivs: list):
        return self._iv_or(ivs, 3) if rhs == "iv" else rhs

    def _index(self, value, ivs: list, elems: int) -> str:
        """A data index in [0, elems): (value ^ iv) & (elems - 1)."""
        b = self.b
        mixed = b.xor(value, self._iv_or(ivs, 7))
        return b.and_(mixed, elems - 1)

    # -- statement emission --------------------------------------------
    def emit_body(self, statements: list, value, ivs: list):
        b = self.b
        for stmt in statements:
            kind = stmt["kind"]
            if kind == "loop":
                value = self.emit_loop(stmt, value, ivs)
            elif kind == "alu":
                rhs = self._resolve_rhs(stmt["rhs"], ivs)
                value = getattr(b, _ALU_METHOD[stmt["op"]])(value, rhs)
            elif kind == "cmpsel":
                rhs = self._resolve_rhs(stmt["rhs"], ivs)
                cond = b.lt(value, rhs)
                bumped = b.add(value, 1)
                value = b.select(cond, bumped, value)
            elif kind == "load":
                data = self.segments["data"]
                index = self._index(value, ivs, len(data))
                value = b.load(b.gep(data.base, index, 8))
            elif kind == "indirect":
                idx_seg = self.segments["idx"]
                tgt_seg = self.segments["tgt"]
                index = self._index(value, ivs, len(idx_seg))
                target = b.load(b.gep(idx_seg.base, index, 8))
                value = b.load(b.gep(tgt_seg.base, target, 8))
            elif kind == "store":
                data = self.segments["data"]
                index = self._index(value, ivs, len(data))
                b.store(b.gep(data.base, index, 8), value)
            elif kind == "prefetch":
                data = self.segments["data"]
                index = self._index(value, ivs, len(data))
                b.prefetch(b.gep(data.base, index, 8))
            elif kind == "work":
                b.work(stmt["amount"])
            elif kind == "call":
                value = b.call(stmt["callee"], [value])
            else:
                raise ValueError(f"unknown statement kind {kind!r}")
        return value

    def emit_loop(self, stmt: dict, value_in, ivs: list):
        b = self.b
        pred = b.current_block
        header = b.block(self.fresh_block("h"))
        exit_block = b.block(self.fresh_block("x"))
        b.jmp(header)
        b.at(header)
        iv = b.phi([(pred, 0)])
        acc = b.phi([(pred, value_in)])

        value = self.emit_body(stmt["body"], acc, ivs + [iv])
        # One mask per iteration bounds value growth (mul/shl chains).
        value = b.and_(value, VALUE_MASK)
        iv_next = b.add(iv, 1)
        cond = b.lt(iv_next, stmt["trip"])
        tail = b.current_block

        if stmt.get("multi_latch"):
            dispatch = b.block(self.fresh_block("d"))
            latch_a = b.block(self.fresh_block("la"))
            latch_b = b.block(self.fresh_block("lb"))
            b.br(cond, dispatch, exit_block)
            b.at(dispatch)
            parity = b.and_(value, 1)
            b.br(parity, latch_a, latch_b)
            b.at(latch_a)
            tweaked = b.xor(value, 2)
            b.jmp(header)
            b.at(latch_b)
            b.jmp(header)
            b.add_incoming(iv, latch_a, iv_next)
            b.add_incoming(iv, latch_b, iv_next)
            b.add_incoming(acc, latch_a, tweaked)
            b.add_incoming(acc, latch_b, value)
        else:
            b.br(cond, header, exit_block)
            b.add_incoming(iv, tail, iv_next)
            b.add_incoming(acc, tail, value)
        b.at(exit_block)
        return value


_ALU_METHOD = {
    "add": "add", "sub": "sub", "mul": "mul", "div": "div", "rem": "rem",
    "and": "and_", "or": "or_", "xor": "xor", "shl": "shl", "shr": "shr",
    "min": "min", "max": "max",
}


def validate_spec(spec: dict) -> None:
    """Raise ``ValueError`` on structurally invalid specs (corpus files
    are external input; fail with a message, not a KeyError)."""
    if not isinstance(spec, dict):
        raise ValueError("spec must be a JSON object")
    if spec.get("schema") != SPEC_SCHEMA:
        raise ValueError(
            f"unsupported spec schema {spec.get('schema')!r} "
            f"(expected {SPEC_SCHEMA})"
        )
    functions = spec.get("functions")
    if not functions or not isinstance(functions, list):
        raise ValueError("spec has no functions")
    names = [f.get("name") for f in functions]
    if "main" not in names:
        raise ValueError("spec has no 'main' function")
    if len(set(names)) != len(names):
        raise ValueError("duplicate function names in spec")
    for elems_key in ("data_elems", "target_elems"):
        elems = spec.get(elems_key, 0)
        if not isinstance(elems, int) or elems < 64 or elems & (elems - 1):
            raise ValueError(
                f"{elems_key} must be a power of two >= 64, got {elems!r}"
            )


def build_program(spec: dict) -> tuple[Module, AddressSpace]:
    """Deterministically build a spec into a finalized, strictly
    verified module plus its (freshly seeded) address space."""
    validate_spec(spec)
    rng = random.Random(spec["seed"])
    data_elems = spec["data_elems"]
    target_elems = spec["target_elems"]

    space = AddressSpace()
    segments = {
        "data": space.allocate(
            "data",
            [rng.randrange(1 << 16) for _ in range(data_elems)],
            elem_size=8,
        ),
        "idx": space.allocate(
            "idx",
            [rng.randrange(target_elems) for _ in range(data_elems)],
            elem_size=8,
        ),
        "tgt": space.allocate(
            "tgt",
            [rng.randrange(1 << 16) for _ in range(target_elems)],
            elem_size=8,
        ),
    }

    module = Module(f"qa-{spec_digest(spec)}")
    b = IRBuilder(module)
    for fspec in spec["functions"]:
        b.function(fspec["name"], params=fspec.get("params", []))
        emitter = _Emitter(b, segments)
        entry = b.block("entry")
        b.at(entry)
        params = fspec.get("params", [])
        value = params[0] if params else 1
        value = emitter.emit_body(fspec["body"], value, [])
        b.ret(value)
    module.finalize()
    verify_module(module, strict=True)
    return module, space
