"""The fuzzing driver: generate -> oracle -> shrink -> corpus.

One call to :func:`run_fuzz` checks ``budget`` programs derived from a
base seed (program ``i`` uses seed ``base + i``, so any failure names
the exact seed to replay).  Failures are shrunk against a focused
oracle slice and, when a corpus directory is given, saved as replayable
regression cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.qa.corpus import save_case
from repro.qa.generate import GeneratorConfig, generate_spec, spec_digest
from repro.qa.oracle import (
    OracleConfig,
    OracleFailure,
    check_models,
    focused_config,
    oracle_failure,
)
from repro.qa.shrink import count_blocks, shrink_spec


@dataclass
class FuzzFinding:
    """One failing program: where it came from and what it shrank to."""

    seed: int
    digest: str
    failure: OracleFailure
    shrunk_spec: Optional[dict] = None
    shrunk_blocks: Optional[int] = None
    corpus_path: Optional[str] = None

    def summary(self) -> str:
        parts = [f"seed={self.seed}", self.failure.summary()]
        if self.shrunk_blocks is not None:
            parts.append(f"shrunk to {self.shrunk_blocks} block(s)")
        if self.corpus_path:
            parts.append(f"saved {self.corpus_path}")
        return " | ".join(parts)


@dataclass
class FuzzStats:
    """Outcome of one fuzzing session."""

    programs: int = 0
    model_cases: int = 0
    findings: list[FuzzFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.programs} program(s) through the differential "
            f"oracle, {self.model_cases} analytic model case(s), "
            f"{len(self.findings)} failure(s)"
        ]
        lines.extend(f"  FAIL {finding.summary()}" for finding in self.findings)
        return "\n".join(lines)


def run_fuzz(
    budget: int = 50,
    seed: int = 0,
    gen_config: Optional[GeneratorConfig] = None,
    oracle_config: Optional[OracleConfig] = None,
    corpus_dir: Optional[Path] = None,
    runners: Optional[dict] = None,
    shrink: bool = True,
    model_cases: int = 100,
    max_findings: int = 5,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzStats:
    """Fuzz ``budget`` generated programs plus ``model_cases`` analytic
    model cases; shrink and (optionally) persist every failure.

    Stops early after ``max_findings`` failures — a broken engine fails
    on nearly every program, and shrinking each one costs oracle runs.
    """
    oracle_config = oracle_config or OracleConfig()
    stats = FuzzStats()
    say = progress or (lambda _line: None)

    if model_cases:
        try:
            stats.model_cases = check_models(seed=seed, cases=model_cases)
        except OracleFailure as failure:
            stats.findings.append(
                FuzzFinding(seed=seed, digest="-", failure=failure)
            )
            say(f"model oracle failed: {failure.summary()}")

    for index in range(budget):
        case_seed = seed + index
        spec = generate_spec(case_seed, gen_config)
        stats.programs += 1
        failure = oracle_failure(spec, oracle_config, runners)
        if failure is None:
            continue
        say(f"seed {case_seed}: {failure.summary()}")
        finding = FuzzFinding(
            seed=case_seed, digest=spec_digest(spec), failure=failure
        )
        if shrink:
            shrink_oracle = focused_config(failure, oracle_config)
            predicate = lambda s: (  # noqa: E731 - tight closure
                oracle_failure(s, shrink_oracle, runners) is not None
            )
            finding.shrunk_spec = shrink_spec(spec, predicate)
            finding.shrunk_blocks = count_blocks(finding.shrunk_spec)
            say(
                f"seed {case_seed}: shrunk to "
                f"{finding.shrunk_blocks} block(s)"
            )
        if corpus_dir is not None:
            to_save = finding.shrunk_spec or spec
            path = save_case(
                to_save,
                corpus_dir=corpus_dir,
                failure=failure.to_dict(),
                note=f"fuzz seed {case_seed} ({finding.digest})",
            )
            finding.corpus_path = str(path)
        stats.findings.append(finding)
        if len(stats.findings) >= max_findings:
            say(f"stopping after {max_findings} finding(s)")
            break
    return stats
