"""The replayable regression corpus under ``tests/corpus/``.

Every corpus file is one JSON *case*::

    {"schema": 1,
     "name": "case-<digest>",
     "note": "free-form provenance (what the case pins down)",
     "failure": null | {"check", "detail", "scheme", "engine", "traced"},
     "spec": {...}}              # a repro.qa.generate program spec

``failure`` records the oracle violation the case was shrunk from; once
the underlying bug is fixed the case must *pass* the full oracle — that
is exactly what ``tests/test_corpus_replay.py`` asserts for every file,
so each case rides along as an ordinary pytest regression forever.

Workflow (see docs/TESTING.md):

* the fuzzer auto-saves shrunk failures here (``repro qa fuzz``);
* ``repro qa replay`` re-runs the oracle over the whole corpus;
* prune a case only when the construct it covers is exercised by a
  newer, smaller case.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Optional

from repro.qa.generate import spec_digest, validate_spec

CASE_SCHEMA = 1


def default_corpus_dir() -> Path:
    """``<repo>/tests/corpus`` resolved relative to this source tree."""
    return Path(__file__).resolve().parents[3] / "tests" / "corpus"


def case_name(spec: dict) -> str:
    return f"case-{spec_digest(spec)}"


def save_case(
    spec: dict,
    corpus_dir: Optional[Path] = None,
    failure: Optional[dict] = None,
    note: str = "",
    name: Optional[str] = None,
) -> Path:
    """Write one case (content-named by spec digest) and return its path."""
    validate_spec(spec)
    corpus_dir = Path(corpus_dir) if corpus_dir else default_corpus_dir()
    corpus_dir.mkdir(parents=True, exist_ok=True)
    name = name or case_name(spec)
    case = {
        "schema": CASE_SCHEMA,
        "name": name,
        "note": note,
        "failure": failure,
        "spec": spec,
    }
    path = corpus_dir / f"{name}.json"
    path.write_text(json.dumps(case, indent=2, sort_keys=True) + "\n")
    return path


def load_case(path: Path) -> dict:
    """Read + validate one corpus file; raises ``ValueError`` with the
    offending path on any malformed content."""
    try:
        case = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: not valid JSON ({error})") from error
    if not isinstance(case, dict) or case.get("schema") != CASE_SCHEMA:
        raise ValueError(
            f"{path}: unsupported corpus schema "
            f"{case.get('schema') if isinstance(case, dict) else None!r}"
        )
    try:
        validate_spec(case.get("spec"))
    except ValueError as error:
        raise ValueError(f"{path}: bad spec ({error})") from error
    return case


def iter_cases(
    corpus_dir: Optional[Path] = None,
) -> Iterator[tuple[str, dict]]:
    """Yield ``(name, case)`` for every corpus file, sorted by name."""
    corpus_dir = Path(corpus_dir) if corpus_dir else default_corpus_dir()
    if not corpus_dir.is_dir():
        return
    for path in sorted(corpus_dir.glob("*.json")):
        case = load_case(path)
        yield case["name"], case
