"""``repro.qa`` — generative differential fuzzing for the whole stack.

The subsystem keeps the three execution engines, the two prefetch
passes, and the memory/observability layers honest on programs far
outside the hand-written workload registry:

* :mod:`repro.qa.generate` — seeded random IR-program generator.  A
  program is described by a plain-JSON *spec* (loops, indirect loads,
  calls, multi-latch CFGs) that builds deterministically into a
  verifier-clean ``(module, space)`` pair.
* :mod:`repro.qa.oracle` — the differential oracle: every engine,
  tracing off and on, both prefetch passes, bit-identical
  values/counters/samples/trace events, plus metamorphic invariants
  (counter conservation, lifecycle accounting) and the Eq-1/Eq-2
  analytic model oracles.
* :mod:`repro.qa.shrink` — delta-debugging minimizer over specs.
* :mod:`repro.qa.corpus` — the replayable regression corpus under
  ``tests/corpus/`` (pytest replays every case).
* :mod:`repro.qa.fuzz` — the fuzzing driver tying it all together.
* :mod:`repro.qa.mutants` — deliberately broken scratch engine copies
  used to prove the oracle + shrinker actually catch bugs.
"""

from repro.qa.corpus import (
    default_corpus_dir,
    iter_cases,
    load_case,
    save_case,
)
from repro.qa.fuzz import FuzzStats, run_fuzz
from repro.qa.generate import (
    GeneratorConfig,
    build_program,
    generate_spec,
    spec_digest,
)
from repro.qa.oracle import (
    OracleConfig,
    OracleFailure,
    check_models,
    check_program,
    oracle_failure,
)
from repro.qa.shrink import count_blocks, shrink_spec

__all__ = [
    "FuzzStats",
    "GeneratorConfig",
    "OracleConfig",
    "OracleFailure",
    "build_program",
    "check_models",
    "check_program",
    "count_blocks",
    "default_corpus_dir",
    "generate_spec",
    "iter_cases",
    "load_case",
    "oracle_failure",
    "run_fuzz",
    "save_case",
    "shrink_spec",
    "spec_digest",
]
