"""Deliberately broken scratch engine copies (oracle self-tests).

A fuzzer that never fails proves nothing — these mutants prove the
differential oracle and the shrinker actually catch and minimize engine
bugs.  Each mutant is built by taking the *source* of a real engine
module, applying a tiny seeded defect (an off-by-one in the cycle
accounting), and executing the mutated source into a scratch module —
the real engine module is never touched, so mutants are safe to build
inside a running test session.

The mutant plugs into the oracle as an extra engine via the ``runners``
parameter: the returned factory builds a normal fast-engine
:class:`Machine` whose compiled-form cache is pre-populated from the
mutated block compiler, so every other layer (memory, PMU, tracing,
sampling) is the production code — exactly the situation a real engine
regression would create.
"""

from __future__ import annotations

import inspect
import types

from repro.machine import blockengine, superblock
from repro.machine.machine import Machine
from repro.qa.oracle import OracleConfig

#: Off-by-one target: the block compiler's RET cost accounting.  Every
#: program retires at least one RET, so any generated program exposes
#: the defect (cycles drift by +1 per function return).
_RET_NEEDLE = (
    "            elif op is Opcode.RET:\n"
    "                pending += cfg.branch_cost\n"
)
_RET_MUTATION = (
    "            elif op is Opcode.RET:\n"
    "                pending += cfg.branch_cost + 1\n"
)

#: The name the mutant engine appears under in the oracle matrix.
MUTANT_ENGINE = "fast-offbyone"


def offbyone_blockengine() -> types.ModuleType:
    """A scratch copy of :mod:`repro.machine.blockengine` with a seeded
    off-by-one in the RET cycle cost."""
    source = inspect.getsource(blockengine)
    if _RET_NEEDLE not in source:
        raise RuntimeError(
            "mutation anchor not found in blockengine source; "
            "update repro.qa.mutants after refactoring the RET handling"
        )
    mutated = source.replace(_RET_NEEDLE, _RET_MUTATION, 1)
    module = types.ModuleType("repro.machine._qa_offbyone_blockengine")
    module.__file__ = "<qa-mutant:blockengine>"
    exec(compile(mutated, "<qa-mutant:blockengine>", "exec"), module.__dict__)
    return module


def offbyone_runner(config: OracleConfig):
    """Machine factory for the off-by-one mutant (pass to the oracle as
    ``runners={MUTANT_ENGINE: offbyone_runner(config)}``)."""
    mutant = offbyone_blockengine()

    def make(module, space) -> Machine:
        machine = Machine(
            module, space, config=config.machine_config(), engine="fast"
        )
        for name, function in module.functions.items():
            machine._compiled[("fast", name)] = mutant.compile_blocks(
                function, machine.config
            )
        return machine

    return make


#: Off-by-one target for the turbo tier: the steady-state stepper's
#: iteration-count math.  The superblock codegen folds one completed
#: fused iteration's retired count into the running accumulator at
#: every back edge; adding one there makes every bulk-stepped loop
#: over-report ``instructions`` by its trip count — invisible to the
#: values/cycles checks, caught only by a counter-exact differential.
_TURBO_NEEDLE = '        self.emit(f"_rt += {rt}")\n'
_TURBO_MUTATION = '        self.emit(f"_rt += {rt} + 1")\n'

#: The name the turbo mutant engine appears under in the oracle matrix.
TURBO_MUTANT_ENGINE = "turbo-offbyone"


def offbyone_superblock() -> types.ModuleType:
    """A scratch copy of :mod:`repro.machine.superblock` with a seeded
    off-by-one in the back-edge retired-count accumulation."""
    source = inspect.getsource(superblock)
    if _TURBO_NEEDLE not in source:
        raise RuntimeError(
            "mutation anchor not found in superblock source; "
            "update repro.qa.mutants after refactoring the back-edge "
            "accumulation"
        )
    mutated = source.replace(_TURBO_NEEDLE, _TURBO_MUTATION, 1)
    module = types.ModuleType("repro.machine._qa_offbyone_superblock")
    module.__file__ = "<qa-mutant:superblock>"
    exec(compile(mutated, "<qa-mutant:superblock>", "exec"), module.__dict__)
    return module


def turbo_offbyone_runner(config: OracleConfig):
    """Machine factory for the turbo off-by-one mutant (pass to the
    oracle as ``runners={TURBO_MUTANT_ENGINE: turbo_offbyone_runner(config)}``)."""
    mutant = offbyone_superblock()

    def make(module, space) -> Machine:
        machine = Machine(
            module, space, config=config.machine_config(), engine="turbo"
        )
        for name, function in module.functions.items():
            machine._compiled[("turbo", name)] = mutant.compile_turbo(
                function, machine.config
            )
        return machine

    return make


def turbo_mutant_oracle_setup(base: OracleConfig = None):
    """The (config, runners) pair for a turbo-mutant differential run:
    the reference interpreter vs the broken bulk stepper, untraced
    'none' scheme only (tracing armed would bypass bulk stepping and
    hide the defect)."""
    base = base or OracleConfig()
    from dataclasses import replace

    config = replace(
        base,
        engines=("reference", TURBO_MUTANT_ENGINE),
        schemes=("none",),
        traced_modes=(False,),
    )
    return config, {TURBO_MUTANT_ENGINE: turbo_offbyone_runner(config)}


def mutant_oracle_setup(base: OracleConfig = None):
    """The (config, runners) pair for a mutant differential run: the
    reference interpreter vs the broken fast-engine copy, untraced
    'none' scheme only — the minimal matrix that still catches the bug."""
    base = base or OracleConfig()
    from dataclasses import replace

    config = replace(
        base,
        engines=("reference", MUTANT_ENGINE),
        schemes=("none",),
        traced_modes=(False,),
    )
    return config, {MUTANT_ENGINE: offbyone_runner(config)}
