"""Delta-debugging shrinker over program specs.

Given a failing spec and a predicate ("does this spec still fail?"),
the shrinker greedily applies structure-aware reductions until none
applies:

1. drop helper functions (and every call statement that targets them);
2. ddmin-style chunk removal over every statement list;
3. loop simplification — unnest (replace the loop with its body),
   single-latch (drop ``multi_latch``), trip-count halving toward 1;
4. scalar minimization — WORK amounts to 1, array sizes toward the
   64-element floor.

Every candidate is rebuilt and re-checked through the caller's
predicate, so the result is always a *real* still-failing program, and
because reductions only ever remove or simplify, the process
terminates.  A typical engine bug shrinks to a single empty loop
(3 basic blocks) or a straight-line function (1 block).
"""

from __future__ import annotations

import copy
from typing import Callable

from repro.qa.generate import build_program

Predicate = Callable[[dict], bool]

#: Smallest array size :func:`repro.qa.generate.validate_spec` accepts.
MIN_ELEMS = 64


def count_blocks(spec: dict) -> int:
    """Total basic blocks in the built program (the shrink metric)."""
    module, _ = build_program(spec)
    return sum(len(function.blocks) for function in module.functions.values())


def _safe_fails(spec: dict, still_fails: Predicate) -> bool:
    """A candidate that no longer builds is not a valid reduction."""
    try:
        build_program(spec)
    except Exception:
        return False
    return still_fails(spec)


# ----------------------------------------------------------------------
# Reduction passes (each returns True if it shrank the spec in place)
# ----------------------------------------------------------------------
def _strip_calls(statements: list, callee: str) -> list:
    out = []
    for stmt in statements:
        if stmt["kind"] == "call" and stmt["callee"] == callee:
            continue
        if stmt["kind"] == "loop":
            stmt = dict(stmt, body=_strip_calls(stmt["body"], callee))
        out.append(stmt)
    return out


def _drop_helpers(spec: dict, still_fails: Predicate) -> bool:
    shrunk = False
    for function in list(spec["functions"]):
        if function["name"] == "main":
            continue
        candidate = copy.deepcopy(spec)
        candidate["functions"] = [
            dict(f, body=_strip_calls(f["body"], function["name"]))
            for f in candidate["functions"]
            if f["name"] != function["name"]
        ]
        if _safe_fails(candidate, still_fails):
            spec["functions"] = candidate["functions"]
            shrunk = True
    return shrunk


def _bodies(spec: dict):
    """Yield (container, key) for every statement list in the spec so
    passes can edit them in place."""
    stack = [(function, "body") for function in spec["functions"]]
    while stack:
        container, key = stack.pop()
        yield container, key
        for stmt in container[key]:
            if stmt["kind"] == "loop":
                stack.append((stmt, "body"))


def _ddmin_lists(spec: dict, still_fails: Predicate) -> bool:
    """Chunk removal over every statement list (classic ddmin shape:
    halve the chunk size until single statements)."""
    shrunk = False
    for container, key in list(_bodies(spec)):
        statements = container[key]
        chunk = max(1, len(statements) // 2)
        while chunk >= 1:
            index = 0
            while index < len(container[key]):
                saved = container[key]
                candidate = saved[:index] + saved[index + chunk:]
                container[key] = candidate
                if _safe_fails(spec, still_fails):
                    shrunk = True  # keep the removal, stay at index
                else:
                    container[key] = saved
                    index += 1
            chunk //= 2
    return shrunk


def _simplify_loops(spec: dict, still_fails: Predicate) -> bool:
    shrunk = False
    for container, key in list(_bodies(spec)):
        index = 0
        while index < len(container[key]):
            stmt = container[key][index]
            if stmt["kind"] != "loop":
                index += 1
                continue
            # (a) unnest: replace the loop with its body.
            saved = container[key]
            container[key] = (
                saved[:index] + stmt["body"] + saved[index + 1:]
            )
            if _safe_fails(spec, still_fails):
                shrunk = True
                continue  # re-examine the spliced statements
            container[key] = saved
            # (b) drop multi-latch.
            if stmt.get("multi_latch"):
                stmt["multi_latch"] = False
                if _safe_fails(spec, still_fails):
                    shrunk = True
                else:
                    stmt["multi_latch"] = True
            # (c) shrink the trip count toward 1.
            while stmt["trip"] > 1:
                original = stmt["trip"]
                stmt["trip"] = max(1, original // 2)
                if _safe_fails(spec, still_fails):
                    shrunk = True
                else:
                    stmt["trip"] = original
                    break
            index += 1
    return shrunk


def _shrink_scalars(spec: dict, still_fails: Predicate) -> bool:
    shrunk = False
    for container, key in list(_bodies(spec)):
        for stmt in container[key]:
            if stmt["kind"] == "work" and stmt["amount"] > 1:
                original = stmt["amount"]
                stmt["amount"] = 1
                if _safe_fails(spec, still_fails):
                    shrunk = True
                else:
                    stmt["amount"] = original
    for elems_key in ("data_elems", "target_elems"):
        while spec[elems_key] > MIN_ELEMS:
            original = spec[elems_key]
            spec[elems_key] = max(MIN_ELEMS, original // 2)
            if _safe_fails(spec, still_fails):
                shrunk = True
            else:
                spec[elems_key] = original
                break
    return shrunk


# ----------------------------------------------------------------------
def shrink_spec(
    spec: dict, still_fails: Predicate, max_rounds: int = 10
) -> dict:
    """Minimize ``spec`` while ``still_fails`` holds.

    The input spec must itself fail the predicate (raises ``ValueError``
    otherwise — shrinking a passing program would 'minimize' it to
    nothing and hide the original signal).
    """
    spec = copy.deepcopy(spec)
    if not still_fails(spec):
        raise ValueError("spec does not fail the predicate; nothing to shrink")
    for _ in range(max_rounds):
        changed = False
        changed |= _drop_helpers(spec, still_fails)
        changed |= _ddmin_lists(spec, still_fails)
        changed |= _simplify_loops(spec, still_fails)
        changed |= _shrink_scalars(spec, still_fails)
        if not changed:
            break
    return spec
