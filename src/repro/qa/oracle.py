"""The differential oracle: what "correct" means for a generated program.

One spec is checked as ``schemes x engines x tracing``:

* **schemes** — the unmodified program (``none``), the static
  Ainsworth & Jones pass (``aj``), and the full profile-guided APT-GET
  pipeline (``apt-get``: profile on the reference engine, Eq-1/Eq-2
  analysis, injection pass, strict re-verification);
* **engines** — every canonical engine (turbo / fast / translate /
  reference) plus any caller-supplied scratch runners (see
  :mod:`repro.qa.mutants`);
* **tracing** — lifecycle tracing off and on.

Every observation must be **bit-identical** across engines (return
value, the full PMU counter vector, LBR snapshots, PEBS records,
prefetch-lifecycle spans, demand events, per-site aggregates) and
identical between traced and untraced runs of the same engine
(tracing is observability, never behaviour).  On top of the
differential check, each observation must satisfy the metamorphic
invariants the simulator promises:

* ``PerfStat.check_invariants`` counter conservation;
* prefetch-lifecycle accounting — every issued software prefetch lands
  in exactly one terminal bucket, and traced per-site rollups equal the
  PMU totals;
* with tracing on, the span/demand rings are consistent with the
  counters.

:func:`check_models` is the analytic side: Eq-1 (distance = ceil(MC/IC))
and Eq-2 (inner vs outer site) recomputed on synthetic latency
distributions with known ground truth, including the documented
degraded paths (empty and single-peak distributions fall back to
distance 1, unreliable).
"""

from __future__ import annotations

import math
import random
from dataclasses import asdict, dataclass, replace
from typing import Callable, Optional

from repro.core.aptget import AptGet, AptGetConfig
from repro.core.distance import MAX_DISTANCE, MIN_DISTANCE, optimal_distance
from repro.core.distribution import analyze_latency_distribution
from repro.core.site import InjectionSite, choose_injection_site
from repro.ir.verifier import verify_module
from repro.machine.config import ENGINES, MachineConfig
from repro.machine.machine import Machine
from repro.machine.pmu import PerfStat
from repro.mem.config import CacheConfig, MemoryConfig
from repro.obs.sites import site_reports
from repro.passes.ainsworth_jones import (
    AinsworthJonesConfig,
    AinsworthJonesPass,
)
from repro.passes.aptget_pass import AptGetPass
from repro.profiling.collect import collect_profile
from repro.qa.generate import build_program

#: Scheme names in oracle order.
SCHEMES = ("none", "aj", "apt-get")

#: A runner maps (module, space) -> a ready Machine; used to plug
#: scratch engine copies (mutants) into the differential matrix.
MachineFactory = Callable[[object, object], Machine]


def qa_memory() -> MemoryConfig:
    """A very small hierarchy so the fuzzer's tiny arrays already miss
    at every level (same shape the unit-test fixtures use)."""
    return MemoryConfig(
        l1=CacheConfig("L1D", 1024, 4, 2),
        l2=CacheConfig("L2", 4096, 4, 12),
        llc=CacheConfig("LLC", 16 * 1024, 8, 40),
        dram_latency=360,
        mshr_entries=16,
    )


@dataclass(frozen=True)
class OracleConfig:
    """Which slice of the differential matrix to run."""

    engines: tuple = ENGINES
    schemes: tuple = SCHEMES
    traced_modes: tuple = (False, True)
    aj_distance: int = 4
    sample_period: int = 251
    trace_capacity: int = 8192
    function: str = "main"

    def machine_config(self, engine: str = "reference") -> MachineConfig:
        return MachineConfig(memory=qa_memory(), engine=engine)


class OracleFailure(AssertionError):
    """One oracle violation, with enough structure to focus a shrink."""

    def __init__(
        self,
        check: str,
        detail: str,
        scheme: Optional[str] = None,
        engine: Optional[str] = None,
        traced: Optional[bool] = None,
    ) -> None:
        self.check = check
        self.detail = detail
        self.scheme = scheme
        self.engine = engine
        self.traced = traced
        super().__init__(self.summary())

    def summary(self) -> str:
        where = "/".join(
            str(part)
            for part in (
                self.scheme,
                self.engine,
                None if self.traced is None else f"traced={self.traced}",
            )
            if part is not None
        )
        prefix = f"[{self.check}]" + (f" {where}:" if where else "")
        return f"{prefix} {self.detail}"

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "detail": self.detail,
            "scheme": self.scheme,
            "engine": self.engine,
            "traced": self.traced,
        }


# ----------------------------------------------------------------------
# Scheme preparation
# ----------------------------------------------------------------------
def _scheme_builder(spec: dict, scheme: str, config: OracleConfig):
    """Return a () -> (module, space) builder with ``scheme`` applied.

    For ``apt-get`` the hints are computed once (profile run on the
    reference engine) and re-applied to every fresh build, exactly like
    the production pipeline's profile-then-recompile flow.
    """
    if scheme == "none":
        return lambda: build_program(spec)

    if scheme == "aj":
        pass_config = AinsworthJonesConfig(distance=config.aj_distance)

        def build_aj():
            module, space = build_program(spec)
            AinsworthJonesPass(pass_config).run(module)
            verify_module(module, strict=True)
            return module, space

        return build_aj

    if scheme == "apt-get":
        profile_module, profile_space = build_program(spec)
        machine = Machine(
            profile_module,
            profile_space,
            config=config.machine_config(),
            engine="reference",
        )
        profile = collect_profile(
            machine, config.function, period=config.sample_period
        )
        hints = AptGet(
            AptGetConfig(min_miss_count=2, min_latency_share=0.0)
        ).analyze(profile_module, profile)

        def build_aptget():
            module, space = build_program(spec)
            AptGetPass(hints).run(module)
            verify_module(module, strict=True)
            return module, space

        return build_aptget

    raise ValueError(f"unknown scheme {scheme!r}; expected one of {SCHEMES}")


# ----------------------------------------------------------------------
# Observation
# ----------------------------------------------------------------------
def _observe(
    builder,
    engine: str,
    traced: bool,
    config: OracleConfig,
    runners: Optional[dict] = None,
) -> dict:
    """Run one (engine, tracing) cell and flatten everything comparable
    into plain data."""
    module, space = builder()
    factory = (runners or {}).get(engine)
    if factory is not None:
        machine = factory(module, space)
    else:
        machine = Machine(
            module, space, config=config.machine_config(), engine=engine
        )
    trace = (
        machine.enable_tracing(capacity=config.trace_capacity)
        if traced
        else None
    )
    machine.enable_profiling(period=config.sample_period)
    result = machine.run(config.function)

    sampler = machine.sampler
    assert sampler is not None
    observation = {
        "value": result.value,
        "counters": result.counters.as_dict(),
        "lbr_samples": [tuple(sample) for sample in sampler.samples],
        "pebs_counts": dict(sampler.load_miss_counts),
        "pebs_latency": dict(sampler.load_miss_latency),
        "outstanding": machine.mem.sw_prefetch_outstanding(),
    }
    if trace is not None:
        observation["trace"] = {
            "counts": trace.event_counts(),
            "spans": list(trace.spans),
            "demand": list(trace.demand),
            "stats": {
                label: asdict(stats)
                for label, stats in sorted(trace.stats.items())
            },
            "site_reports": {
                label: report.to_dict()
                for label, report in sorted(site_reports(trace).items())
            },
        }
        observation["_trace_obj"] = trace  # for invariants; not compared
    observation["_machine"] = machine  # for invariants; not compared
    return observation


#: Keys compared across engines / tracing modes (order matters for the
#: first-diff report).
_COMPARED_KEYS = (
    "value",
    "counters",
    "lbr_samples",
    "pebs_counts",
    "pebs_latency",
    "outstanding",
)


def _describe_diff(key: str, a, b) -> str:
    if key == "counters" and isinstance(a, dict) and isinstance(b, dict):
        diffs = [
            f"{name}: {a[name]!r} != {b[name]!r}"
            for name in a
            if a[name] != b[name]
        ]
        return f"counters differ ({'; '.join(diffs[:5])})"
    text_a, text_b = repr(a), repr(b)
    if len(text_a) > 120:
        text_a = text_a[:120] + "..."
    if len(text_b) > 120:
        text_b = text_b[:120] + "..."
    return f"{key} differ: {text_a} != {text_b}"


def _check_observation_invariants(
    observation: dict, scheme: str, engine: str, traced: bool
) -> None:
    counters = observation["_machine"].counters
    problems = PerfStat(counters).check_invariants()
    if problems:
        raise OracleFailure(
            "counter-invariants", "; ".join(problems), scheme, engine, traced
        )

    c = counters
    terminal = (
        c.sw_prefetch_useful
        + c.sw_prefetch_early_evicted
        + c.sw_prefetch_redundant
        + c.sw_prefetch_dropped_mshr
        + c.sw_prefetch_dropped_unmapped
        + observation["outstanding"]
    )
    if c.sw_prefetch_issued != terminal:
        raise OracleFailure(
            "lifecycle-accounting",
            f"issued={c.sw_prefetch_issued} != terminal buckets={terminal}",
            scheme,
            engine,
            traced,
        )
    if c.load_hit_pre_sw_pf > c.sw_prefetch_useful:
        raise OracleFailure(
            "lifecycle-accounting",
            f"LOAD_HIT_PRE {c.load_hit_pre_sw_pf} > useful "
            f"{c.sw_prefetch_useful}",
            scheme,
            engine,
            traced,
        )

    trace = observation.get("_trace_obj")
    if trace is None:
        return
    reports = site_reports(trace)
    totals = {
        field: sum(getattr(report, field) for report in reports.values())
        for field in (
            "issued", "timely", "late", "early_evicted",
            "dropped_mshr", "dropped_unmapped", "redundant", "unused",
        )
    }
    checks = (
        ("issued", totals["issued"], c.sw_prefetch_issued),
        ("timely+late", totals["timely"] + totals["late"],
         c.sw_prefetch_useful),
        ("early_evicted", totals["early_evicted"],
         c.sw_prefetch_early_evicted),
        ("redundant", totals["redundant"], c.sw_prefetch_redundant),
        ("dropped_mshr", totals["dropped_mshr"], c.sw_prefetch_dropped_mshr),
        ("dropped_unmapped", totals["dropped_unmapped"],
         c.sw_prefetch_dropped_unmapped),
        ("unused", totals["unused"], observation["outstanding"]),
    )
    for name, trace_total, pmu_total in checks:
        if trace_total != pmu_total:
            raise OracleFailure(
                "trace-vs-pmu",
                f"site rollup {name}={trace_total} != PMU {pmu_total}",
                scheme,
                engine,
                traced,
            )
    # Store coalesces count as late in the trace but not in
    # LOAD_HIT_PRE (a load-only PMU event), hence >=.
    if totals["late"] < c.load_hit_pre_sw_pf:
        raise OracleFailure(
            "trace-vs-pmu",
            f"trace late={totals['late']} < LOAD_HIT_PRE "
            f"{c.load_hit_pre_sw_pf}",
            scheme,
            engine,
            traced,
        )


def _check_differential(
    observations: dict, scheme: str, config: OracleConfig
) -> None:
    baseline_key = ("reference", False)
    if baseline_key not in observations:
        baseline_key = sorted(
            observations, key=lambda k: (k[0] != "reference", k)
        )[0]
    baseline = observations[baseline_key]

    for (engine, traced), observation in observations.items():
        if (engine, traced) == baseline_key:
            continue
        for key in _COMPARED_KEYS:
            if observation[key] != baseline[key]:
                raise OracleFailure(
                    "differential",
                    _describe_diff(key, baseline[key], observation[key])
                    + f" (vs {baseline_key[0]}/traced={baseline_key[1]})",
                    scheme,
                    engine,
                    traced,
                )

    # Trace streams must agree across engines (traced cells only).
    traced_keys = sorted(k for k in observations if k[1])
    if len(traced_keys) > 1:
        reference_trace = observations[traced_keys[0]]["trace"]
        for key in traced_keys[1:]:
            trace = observations[key]["trace"]
            for field in ("counts", "spans", "demand", "stats",
                          "site_reports"):
                if trace[field] != reference_trace[field]:
                    raise OracleFailure(
                        "differential-trace",
                        _describe_diff(
                            f"trace.{field}",
                            reference_trace[field],
                            trace[field],
                        )
                        + f" (vs {traced_keys[0][0]})",
                        scheme,
                        key[0],
                        True,
                    )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def check_program(
    spec: dict,
    config: Optional[OracleConfig] = None,
    runners: Optional[dict] = None,
) -> None:
    """Run the full differential matrix on one spec; raises
    :class:`OracleFailure` on the first violation."""
    config = config or OracleConfig()
    for scheme in config.schemes:
        try:
            builder = _scheme_builder(spec, scheme, config)
        except OracleFailure:
            raise
        except Exception as error:
            raise OracleFailure(
                "exception", f"scheme preparation raised {error!r}", scheme
            ) from error
        observations: dict = {}
        for engine in config.engines:
            for traced in config.traced_modes:
                try:
                    observation = _observe(
                        builder, engine, traced, config, runners
                    )
                except OracleFailure:
                    raise
                except Exception as error:
                    raise OracleFailure(
                        "exception",
                        f"run raised {error!r}",
                        scheme,
                        engine,
                        traced,
                    ) from error
                _check_observation_invariants(
                    observation, scheme, engine, traced
                )
                observations[(engine, traced)] = observation
        _check_differential(observations, scheme, config)


#: Batch-axis grids: cache-capacity divisors for the uniform batch and
#: A&J prefetch distances for the divergent-immediate batch (>= 2: at
#: distance 1 the A&J pass folds the loop increment into the prefetch
#: advance, which is a legitimate per-cell-fallback case, not an
#: alignment case).
BATCH_CACHE_SCALES = (1, 2, 4)
BATCH_AJ_DISTANCES = (2, 4, 8)


def check_batch(
    spec: dict, config: Optional[OracleConfig] = None
) -> dict:
    """The batch≡sequential oracle axis.

    Runs the spec through :func:`repro.machine.batch.run_batch` on two
    cell shapes — a *uniform* batch (identical modules, cache
    capacities scaled per cell) and a *divergent-immediate* batch (A&J
    injection at a different distance per cell) — once per batch
    execution tier (block-dispatch ``batch`` and fused-superblock
    ``batchturbo``), and demands every cell be bit-identical (return
    value + full PMU counter vector) to a fresh sequential
    :class:`Machine` run of the same module/config.

    Unlike :func:`check_program`'s cells this path runs **unprofiled**
    (no LBR/PEBS sampling, no tracing): the batch tier excludes
    profiling by contract, so the comparison is run-to-run, not
    batch-to-profiled-run.  The fallback path is covered too — a spec
    the batch compiler rejects (divergent branch, misalignment, …)
    replays per cell, and those results must *still* match sequential.

    Returns ``{"axes": {label: batched}, ...}`` for reporting; raises
    :class:`OracleFailure` on the first mismatch.
    """
    from repro.machine.batch import BatchCell, run_batch

    config = config or OracleConfig()
    base = config.machine_config("fast")

    def uniform_cells() -> list:
        cells = []
        for scale in BATCH_CACHE_SCALES:
            module, space = build_program(spec)
            cell_config = (
                base if scale == 1
                else replace(base, memory=base.memory.scaled(scale))
            )
            cells.append(BatchCell(module, space, cell_config))
        return cells

    def aj_cells() -> list:
        cells = []
        for distance in BATCH_AJ_DISTANCES:
            module, space = build_program(spec)
            AinsworthJonesPass(
                AinsworthJonesConfig(distance=distance)
            ).run(module)
            verify_module(module, strict=True)
            cells.append(BatchCell(module, space, base))
        return cells

    # Every axis runs once per batch tier: the per-block chains and the
    # fused superblock tier must both be bit-identical with sequential
    # (and hence with each other) on every cell.
    combos = [
        (f"{base_label}/{tier}", make, tier)
        for base_label, make in (
            ("batch-uniform", uniform_cells),
            ("batch-aj", aj_cells),
        )
        for tier in ("batch", "batchturbo")
    ]
    outcomes: dict = {}
    for label, make, tier in combos:
        try:
            outcome = run_batch(make(), function=config.function, tier=tier)
        except Exception as error:
            raise OracleFailure(
                "exception", f"run_batch raised {error!r}", label
            ) from error
        replay = make()
        for index, result in enumerate(outcome.results):
            cell = replay[index]
            try:
                sequential = Machine(
                    cell.module, cell.space, config=cell.config
                ).run(config.function)
            except Exception as error:
                raise OracleFailure(
                    "exception",
                    f"sequential replay raised {error!r}",
                    label,
                    f"cell-{index}",
                ) from error
            if result.value != sequential.value:
                raise OracleFailure(
                    "batch-differential",
                    f"value {result.value!r} != sequential "
                    f"{sequential.value!r} (batched={outcome.batched})",
                    label,
                    f"cell-{index}",
                )
            batch_counters = result.counters.as_dict()
            seq_counters = sequential.counters.as_dict()
            if batch_counters != seq_counters:
                raise OracleFailure(
                    "batch-differential",
                    _describe_diff("counters", seq_counters, batch_counters)
                    + f" (batched={outcome.batched})",
                    label,
                    f"cell-{index}",
                )
        outcomes[label] = outcome.batched
    return {"axes": outcomes}


def batch_failure(
    spec: dict, config: Optional[OracleConfig] = None
) -> Optional[OracleFailure]:
    """Predicate form of :func:`check_batch`: the failure, or None."""
    try:
        check_batch(spec, config)
    except OracleFailure as failure:
        return failure
    return None


# ----------------------------------------------------------------------
# Axis #6: fresh-compile vs codecache-load bit-identity
# ----------------------------------------------------------------------
def _codecache_observe(
    builder, engine: str, traced: bool, config: OracleConfig, code_cache
):
    """One oracle cell with an explicit ``code_cache`` knob ("off" for
    the fresh baseline, a directory for populate/warm cells)."""
    machine_config = replace(
        config.machine_config(engine), code_cache=code_cache
    )

    def factory(module, space) -> Machine:
        return Machine(module, space, config=machine_config, engine=engine)

    return _observe(builder, engine, traced, config, {engine: factory})


def check_codecache(
    spec: dict, config: Optional[OracleConfig] = None
) -> dict:
    """The fresh-compile ≡ codecache-load oracle axis.

    For every cacheable engine x scheme x tracing mode, three cells run
    the same program: *fresh* (code cache force-disabled), *populate*
    (an empty per-spec cache directory: miss + put), and *warm* (a new
    Machine served from the now-populated cache).  All three must be
    bit-identical on every compared stream (value, PMU counters, LBR,
    PEBS, trace events); the warm cell must be an actual cache hit with
    zero invalidations — a warm run that silently recompiled would hide
    a broken loader forever.

    Returns ``{"cells": n, "hits": n}``; raises :class:`OracleFailure`
    on the first violation.
    """
    import tempfile

    from repro.machine import codecache

    config = config or OracleConfig()
    engines = tuple(
        e for e in config.engines if e in codecache.CACHEABLE_ENGINES
    )
    cells = hits = 0
    with tempfile.TemporaryDirectory(prefix="repro-codecache-oracle-") as tmp:
        try:
            cache = codecache.resolve(tmp)
            for scheme in config.schemes:
                try:
                    builder = _scheme_builder(spec, scheme, config)
                except OracleFailure:
                    raise
                except Exception as error:
                    raise OracleFailure(
                        "exception",
                        f"scheme preparation raised {error!r}",
                        scheme,
                    ) from error
                for engine in engines:
                    for traced in config.traced_modes:
                        observations = {}
                        for label, knob in (
                            ("fresh", "off"),
                            ("populate", tmp),
                            ("warm", tmp),
                        ):
                            invalidated = cache.invalidated
                            cache_hits = cache.hits
                            try:
                                observations[label] = _codecache_observe(
                                    builder, engine, traced, config, knob
                                )
                            except OracleFailure:
                                raise
                            except Exception as error:
                                raise OracleFailure(
                                    "exception",
                                    f"{label} run raised {error!r}",
                                    scheme,
                                    engine,
                                    traced,
                                ) from error
                            if cache.invalidated != invalidated:
                                raise OracleFailure(
                                    "codecache-invalidated",
                                    f"{label} run invalidated a cached "
                                    f"module (+{cache.invalidated - invalidated})",
                                    scheme,
                                    engine,
                                    traced,
                                )
                            if label == "warm" and cache.hits == cache_hits:
                                raise OracleFailure(
                                    "codecache-cold",
                                    "warm run recorded no cache hit "
                                    "(silent recompile)",
                                    scheme,
                                    engine,
                                    traced,
                                )
                            if label == "warm":
                                hits += cache.hits - cache_hits
                        fresh = observations["fresh"]
                        for label in ("populate", "warm"):
                            observation = observations[label]
                            for key in _COMPARED_KEYS:
                                if observation[key] != fresh[key]:
                                    raise OracleFailure(
                                        "codecache-differential",
                                        _describe_diff(
                                            key, fresh[key], observation[key]
                                        )
                                        + f" ({label} vs fresh)",
                                        scheme,
                                        engine,
                                        traced,
                                    )
                            if traced:
                                for field in (
                                    "counts", "spans", "demand", "stats",
                                    "site_reports",
                                ):
                                    if (
                                        observation["trace"][field]
                                        != fresh["trace"][field]
                                    ):
                                        raise OracleFailure(
                                            "codecache-differential",
                                            _describe_diff(
                                                f"trace.{field}",
                                                fresh["trace"][field],
                                                observation["trace"][field],
                                            )
                                            + f" ({label} vs fresh)",
                                            scheme,
                                            engine,
                                            traced,
                                        )
                        cells += 1
        finally:
            codecache.forget(tmp)
    return {"cells": cells, "hits": hits}


def check_codecache_selftest(
    spec: dict, config: Optional[OracleConfig] = None
) -> int:
    """Mutation self-test for the code cache's validate-or-recompile
    guard: deliberately stale or booby-trapped cached modules must be
    *detected* (counted ``invalidated``), never executed, and the run
    must fall back to a bit-identical fresh compile.

    Plants, per cacheable engine:

    1. a **stale** entry — a payload compiled from a *different* program
       (the A&J-injected variant) stored under the current program's
       key, embedded IR fingerprint and all — the cache-dirs-copied /
       key-collision scenario the embedded fingerprint exists for;
    2. a **booby-trapped** entry — correct metadata, but code blobs that
       raise at exec time — a torn or hostile marshal payload.

    Returns the number of planted mutants detected; raises
    :class:`OracleFailure` if any survives (wrong result, missed
    invalidation, or a hit recorded for poisoned bytes).
    """
    import tempfile

    from repro.machine import codecache

    config = config or OracleConfig()
    engines = tuple(
        e for e in config.engines if e in codecache.CACHEABLE_ENGINES
    )
    build_clean = _scheme_builder(spec, "none", config)
    build_mutant = _scheme_builder(spec, "aj", config)
    detected = 0
    for engine in engines:
        with tempfile.TemporaryDirectory(
            prefix="repro-codecache-mut-"
        ) as tmp:
            try:
                cache = codecache.resolve(tmp)
                fresh = _codecache_observe(
                    build_clean, engine, False, config, "off"
                )
                # Populate both variants: clean entries prove the
                # round-trip before we poison them; the A&J variant's
                # entries are the stale modules we plant under clean
                # keys below.
                _codecache_observe(build_clean, engine, False, config, tmp)
                _codecache_observe(build_mutant, engine, False, config, tmp)
                clean_module, _ = build_clean()
                mutant_module, _ = build_mutant()
                machine_config = replace(
                    config.machine_config(engine), code_cache=tmp
                )
                for name in clean_module.functions:
                    clean_fn = clean_module.function(name)
                    key = cache.key(clean_fn, machine_config, engine)
                    clean_ir = dict(key.params)["ir"]
                    stale = None
                    if name in mutant_module.functions:
                        mutant_key = cache.key(
                            mutant_module.function(name),
                            machine_config,
                            engine,
                        )
                        stale = cache.store.get(mutant_key)
                    if stale is not None and stale.get("ir") != clean_ir:
                        cache.store.put(key, stale)  # plant the stale module
                    else:
                        payload = cache.store.get(key)
                        if payload is None:
                            raise OracleFailure(
                                "codecache-selftest",
                                f"populate run left no entry for {name!r}",
                                None,
                                engine,
                            )
                        _booby_trap(payload)
                        cache.store.put(key, payload)
                invalidated = cache.invalidated
                hits = cache.hits
                replay = _codecache_observe(
                    build_clean, engine, False, config, tmp
                )
                if cache.invalidated == invalidated:
                    raise OracleFailure(
                        "codecache-selftest",
                        "planted mutant module was not invalidated",
                        None,
                        engine,
                    )
                if cache.hits != hits:
                    raise OracleFailure(
                        "codecache-selftest",
                        "a poisoned entry was served as a hit",
                        None,
                        engine,
                    )
                for key in _COMPARED_KEYS:
                    if replay[key] != fresh[key]:
                        raise OracleFailure(
                            "codecache-selftest",
                            _describe_diff(key, fresh[key], replay[key])
                            + " (fallback after planted mutant)",
                            None,
                            engine,
                        )
                detected += cache.invalidated - invalidated
            finally:
                codecache.forget(tmp)
    return detected


def _booby_trap(payload: dict) -> None:
    """Replace a payload's code blobs with blobs that raise at exec
    time (metadata left intact, so only the exec guard can catch it)."""
    from repro.machine.codecache import _encode_code

    trap = _encode_code(
        "raise RuntimeError('stale cached module executed')",
        "<codecache-selftest-trap>",
    )
    for field in ("code", "code_plain", "code_profiled"):
        if field in payload:
            payload[field] = trap
    for entry in payload.get("superblocks", ()) or ():
        if isinstance(entry, dict):
            for field in ("code_plain", "code_profiled"):
                entry[field] = trap


def codecache_failure(
    spec: dict, config: Optional[OracleConfig] = None
) -> Optional[OracleFailure]:
    """Predicate form of :func:`check_codecache`: the failure, or None."""
    try:
        check_codecache(spec, config)
    except OracleFailure as failure:
        return failure
    return None


def oracle_failure(
    spec: dict,
    config: Optional[OracleConfig] = None,
    runners: Optional[dict] = None,
) -> Optional[OracleFailure]:
    """Predicate form of :func:`check_program`: the failure, or None."""
    try:
        check_program(spec, config, runners)
    except OracleFailure as failure:
        return failure
    return None


def focused_config(
    failure: OracleFailure, config: Optional[OracleConfig] = None
) -> OracleConfig:
    """Narrow a config to the slice that reproduced ``failure`` (the
    shrinker re-runs the oracle per candidate; a focused matrix keeps
    that cheap while still comparing against the reference engine)."""
    config = config or OracleConfig()
    schemes = (failure.scheme,) if failure.scheme else config.schemes
    if failure.engine and failure.engine != "reference":
        engines = tuple(
            e for e in config.engines if e in ("reference", failure.engine)
        )
        if failure.engine not in engines:  # caller-supplied runner name
            engines = engines + (failure.engine,)
    else:
        engines = config.engines
    return replace(config, schemes=schemes, engines=engines)


# ----------------------------------------------------------------------
# Analytic model oracles (Eq-1 / Eq-2)
# ----------------------------------------------------------------------
def check_models(seed: int = 0, cases: int = 200) -> int:
    """Recompute Eq-1/Eq-2 on synthetic latency distributions with known
    ground truth; returns the number of cases checked, raises
    :class:`OracleFailure` on the first violation."""

    def model_failure(detail: str) -> OracleFailure:
        return OracleFailure("model", detail)

    rng = random.Random(seed)
    checked = 0

    # Degraded inputs first: the documented fallback paths.
    empty = optimal_distance(analyze_latency_distribution([]))
    if empty.distance != MIN_DISTANCE or empty.reliable:
        raise model_failure(
            f"empty distribution must fall back to distance "
            f"{MIN_DISTANCE} (unreliable), got {empty}"
        )
    single = optimal_distance(analyze_latency_distribution([37] * 64))
    if single.distance != MIN_DISTANCE or single.reliable:
        raise model_failure(
            f"single-peak distribution must fall back to distance "
            f"{MIN_DISTANCE} (unreliable), got {single}"
        )
    checked += 2

    for _ in range(cases):
        # Eq-1 on a clean two-peak distribution.
        ic = rng.randint(2, 200)
        miss = rng.randint(40, 3000)
        hit_count = rng.randint(20, 120)
        miss_count = rng.randint(20, 120)
        latencies = [ic] * hit_count + [ic + miss] * miss_count
        distribution = analyze_latency_distribution(latencies)
        estimate = optimal_distance(distribution)
        if estimate.reliable and MIN_DISTANCE < estimate.distance < MAX_DISTANCE:
            expected = math.ceil(
                estimate.mc_latency / max(estimate.ic_latency, 1)
            )
            if abs(estimate.distance - expected) > 1:
                raise model_failure(
                    f"Eq-1: ic={ic} miss={miss} -> distance "
                    f"{estimate.distance}, expected ceil(MC/IC)={expected} "
                    f"(MC={estimate.mc_latency}, IC={estimate.ic_latency})"
                )
        if not MIN_DISTANCE <= estimate.distance <= MAX_DISTANCE:
            raise model_failure(
                f"Eq-1 distance {estimate.distance} outside "
                f"[{MIN_DISTANCE}, {MAX_DISTANCE}]"
            )
        checked += 1

        # Eq-2 against its closed form.
        trip = rng.uniform(0.1, 10_000.0)
        distance = rng.randint(1, 256)
        k = rng.uniform(1.01, 50.0)
        decision = choose_injection_site(trip, distance, k=k)
        expected_site = (
            InjectionSite.OUTER if trip < k * distance else InjectionSite.INNER
        )
        if decision.site is not expected_site:
            raise model_failure(
                f"Eq-2: trip={trip:.2f} distance={distance} k={k:.2f} -> "
                f"{decision.site}, expected {expected_site}"
            )
        checked += 1
    return checked
