"""Figure 5: memory-boundedness of the evaluation suite (baseline).

Fraction of execution cycles stalled on L3/DRAM for each application's
non-prefetching baseline.  Expected shape (paper): all selected
applications are substantially memory bound (paper average 49.4% on an
out-of-order Xeon; the blocking simulated core stalls more — see
EXPERIMENTS.md).

The trailing ``APT timely`` column reports the APT-GET run's
``prefetch_timeliness`` (fraction of consumed software prefetches that
arrived before their demand use) — context for how much of this stall
the profile-guided distances actually hide.
"""

from __future__ import annotations

from repro.experiments.result import ExperimentResult
from repro.experiments.runner import suite_comparison


def run(scale: str = "small") -> ExperimentResult:
    comparisons = suite_comparison(scale)
    rows = []
    fractions = []
    for name, comparison in comparisons.items():
        if comparison.error:
            rows.append([name, "error", "error", "error", "error"])
            continue
        counters = comparison.baseline.result.counters
        perf = comparison.baseline.perf
        cycles = max(counters.cycles, 1.0)
        llc_frac = counters.stall_cycles_llc / cycles
        dram_frac = counters.stall_cycles_dram / cycles
        fractions.append(perf.memory_bound_fraction)
        apt_timely = comparison.runs["apt-get"].perf.prefetch_timeliness
        rows.append(
            [
                name,
                round(llc_frac, 3),
                round(dram_frac, 3),
                round(perf.memory_bound_fraction, 3),
                round(apt_timely, 3),
            ]
        )
    average = sum(fractions) / len(fractions) if fractions else 0.0
    return ExperimentResult(
        experiment="fig5",
        title="L3/DRAM stall fraction of the non-prefetching baseline",
        headers=[
            "workload",
            "L3 stalls",
            "DRAM stalls",
            "memory-bound",
            "APT timely",
        ],
        rows=rows,
        summary={"average_memory_bound": round(average, 3)},
        notes="Paper average: 49.4% (out-of-order core overlaps misses).",
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
