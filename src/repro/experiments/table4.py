"""Table 4: graph data-set properties — original SNAP sizes vs. the
scaled synthetic stand-ins actually built (DESIGN.md substitution rule:
average degree preserved, sizes scaled with the LLC)."""

from __future__ import annotations

from repro.experiments.result import ExperimentResult
from repro.workloads.graphs import CATALOG


def run(scale: str = "small") -> ExperimentResult:
    rows = []
    degree_errors = []
    for name, entry in CATALOG.items():
        graph = entry.build()
        original_degree = (
            entry.original_edges / entry.original_vertices
            if entry.original_vertices
            else 0.0
        )
        if original_degree:
            degree_errors.append(
                abs(graph.avg_degree - original_degree) / original_degree
            )
        rows.append(
            [
                name,
                entry.original_vertices,
                entry.original_edges,
                graph.n,
                graph.m,
                round(original_degree, 2),
                round(graph.avg_degree, 2),
                entry.kind,
            ]
        )
    max_error = max(degree_errors) if degree_errors else 0.0
    return ExperimentResult(
        experiment="table4",
        title="Graph data-sets: SNAP originals vs. scaled synthetics",
        headers=[
            "data-set",
            "orig #V",
            "orig #E",
            "ours #V",
            "ours #E",
            "orig deg",
            "ours deg",
            "kind",
        ],
        rows=rows,
        summary={"max_avg_degree_error": round(max_error, 3)},
        notes="Average degree (the trip-count driver) preserved under scaling.",
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
