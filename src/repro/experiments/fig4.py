"""Figure 4: the loop-latency distribution of a delinquent load.

Profile a graph workload (BFS), take the hottest delinquent load, and
histogram its loop's iteration latencies from LBR samples.  Expected
shape (paper): a multi-modal distribution with one peak per memory level
(the paper sees ~80/230/400/650 cycles); the lowest peak is the
instruction component, the highest the DRAM-served case.
"""

from __future__ import annotations

from repro.core.aptget import AptGet
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import profile_workload
from repro.machine.machine import Machine
from repro.profiling.collect import collect_profile
from repro.workloads.bfs import BFSWorkload
from repro.workloads.graphs import dataset, synthetic_dataset


def _workload(scale: str) -> BFSWorkload:
    if scale == "tiny":
        return BFSWorkload(synthetic_dataset(2_000, 4, seed=31))
    return BFSWorkload(dataset("loc-Brightkite"))


def run(scale: str = "small") -> ExperimentResult:
    workload = _workload(scale)
    module, space = workload.build()
    machine = Machine(module, space)
    profile = collect_profile(machine, workload.entry)
    delinquent = profile.delinquent_loads(top=1, min_count=4)
    if not delinquent:
        raise RuntimeError("profiling found no delinquent load")
    analysis = AptGet().analyze_load(module, profile, delinquent[0])
    assert analysis is not None
    distribution = analysis.inner_distribution
    rows = [
        [f"peak {index}", peak, mass]
        for index, (peak, mass) in enumerate(
            zip(distribution.peaks, distribution.peak_masses)
        )
    ]
    return ExperimentResult(
        experiment="fig4",
        title=(
            "Loop execution-time distribution of the delinquent load "
            f"(workload {workload.name}, {distribution.count} LBR samples)"
        ),
        headers=["peak", "latency (cycles)", "mass"],
        rows=rows,
        summary={
            "n_peaks": float(len(distribution.peaks)),
            "ic_latency": float(distribution.ic_latency),
            "miss_latency": float(distribution.miss_latency),
            "mc_latency": float(distribution.mc_latency),
        },
        notes=(
            "Paper: four peaks (~80/230/400/650) on a Xeon; here peaks sit "
            "at IC, IC+LLC, IC+DRAM of the simulated machine."
        ),
    )


def histogram(scale: str = "small", bins: int = 40) -> list[tuple[int, int]]:
    """Raw (latency, count) histogram for plotting/inspection."""
    workload = _workload(scale)
    profile, _ = profile_workload(workload)
    module, _ = workload.build()
    delinquent = profile.delinquent_loads(top=1, min_count=4)
    analysis = AptGet().analyze_load(module, profile, delinquent[0])
    assert analysis is not None
    latencies = analysis.inner_distribution.latencies
    if not latencies:
        return []
    top = max(latencies)
    width = max(1, top // bins)
    counts: dict[int, int] = {}
    for latency in latencies:
        bucket = (latency // width) * width
        counts[bucket] = counts.get(bucket, 0) + 1
    return sorted(counts.items())


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
