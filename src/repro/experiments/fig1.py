"""Figure 1: speedup vs. prefetch-distance for three work complexities.

Microbenchmark with INNER=256; static inner-loop injection swept over
distances.  Expected shape (paper): large gains (>2x at the optimum);
the optimal distance *decreases* as work complexity increases
(low -> 32, medium -> 16, high -> 4 on the paper's machine).
"""

from __future__ import annotations

from repro.experiments.result import ExperimentResult
from repro.experiments.runner import run_ainsworth_jones, run_baseline
from repro.workloads.micro import IndirectMicrobenchmark

COMPLEXITIES = ("low", "medium", "high")
DISTANCES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

_SCALE_ITERATIONS = {"tiny": 8_000, "small": 40_000, "full": 150_000}


def run(scale: str = "small") -> ExperimentResult:
    iterations = _SCALE_ITERATIONS.get(scale, 40_000)
    distances = DISTANCES if scale != "tiny" else (1, 4, 16, 64, 256)
    rows = []
    optima: dict[str, int] = {}
    for complexity in COMPLEXITIES:
        baseline = run_baseline(
            IndirectMicrobenchmark(
                inner=256, complexity=complexity, total_iterations=iterations
            )
        )
        speedups = []
        for distance in distances:
            optimized = run_ainsworth_jones(
                IndirectMicrobenchmark(
                    inner=256, complexity=complexity, total_iterations=iterations
                ),
                distance=distance,
            )
            speedups.append(baseline.cycles / optimized.cycles)
        best = max(range(len(distances)), key=lambda i: speedups[i])
        optima[complexity] = distances[best]
        rows.append([complexity] + [round(s, 3) for s in speedups])
    return ExperimentResult(
        experiment="fig1",
        title="Speedup vs. prefetch-distance per work complexity (INNER=256)",
        headers=["complexity"] + [f"d={d}" for d in distances],
        rows=rows,
        summary={f"optimal_distance_{c}": float(optima[c]) for c in COMPLEXITIES},
        notes="Paper optima: low=32, medium=16, high=4 (ordering matters).",
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
