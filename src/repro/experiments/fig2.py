"""Figure 2: prefetch-distance impact for varying inner-loop trip counts.

Low work complexity; INNER in {4, 16, 64}.  Expected shape (paper): for
trip count 4 inner-loop prefetching is no longer beneficial; 16 and 64
give moderate gains and only at *small* distances — motivating the
outer-loop injection site.
"""

from __future__ import annotations

from repro.experiments.result import ExperimentResult
from repro.experiments.runner import run_ainsworth_jones, run_baseline
from repro.workloads.micro import IndirectMicrobenchmark

TRIP_COUNTS = (4, 16, 64)
DISTANCES = (1, 2, 4, 8, 16, 32, 64)

_SCALE_ITERATIONS = {"tiny": 8_000, "small": 40_000, "full": 150_000}


def run(scale: str = "small") -> ExperimentResult:
    iterations = _SCALE_ITERATIONS.get(scale, 40_000)
    distances = DISTANCES if scale != "tiny" else (1, 4, 16)
    rows = []
    best: dict[int, float] = {}
    for trip in TRIP_COUNTS:
        baseline = run_baseline(
            IndirectMicrobenchmark(
                inner=trip, complexity="low", total_iterations=iterations
            )
        )
        speedups = []
        for distance in distances:
            optimized = run_ainsworth_jones(
                IndirectMicrobenchmark(
                    inner=trip, complexity="low", total_iterations=iterations
                ),
                distance=distance,
            )
            speedups.append(baseline.cycles / optimized.cycles)
        best[trip] = max(speedups)
        rows.append([f"INNER={trip}"] + [round(s, 3) for s in speedups])
    return ExperimentResult(
        experiment="fig2",
        title="Inner-loop prefetching vs. trip count (low complexity)",
        headers=["trip count"] + [f"d={d}" for d in distances],
        rows=rows,
        summary={f"best_speedup_trip{t}": best[t] for t in TRIP_COUNTS},
        notes=(
            "Paper: trip 4 -> no benefit; 16/64 -> moderate gains needing "
            "small distances."
        ),
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
