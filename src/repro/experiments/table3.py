"""Table 3: the application list, instantiated and sanity-checked.

For each evaluation workload, reports the description, the loop-nest
shape the passes see (loop count, max depth), and the indirect-load
candidates the static analysis finds — evidence that every Table-3
application is present and has the access pattern the paper selected it
for.
"""

from __future__ import annotations

from repro.analysis.loops import find_loops
from repro.analysis.slices import find_indirect_loads
from repro.experiments.result import ExperimentResult
from repro.workloads.registry import SUITE, make_workload

DESCRIPTIONS = {
    "BFS": "searches a target vertex given a start node in a graph",
    "DFS": "depth-first traversal given a start node",
    "PR": "computes ranking of web pages",
    "BC": "centrality via shortest-path counting",
    "SSSP": "shortest path to all vertices from a source",
    "IS": "bucket sorting of random integers (NPB)",
    "CG": "sparse matrix multiplications (NPB)",
    "randAccess": "memory system performance (HPCC GUPS)",
    "HJ": "database hash join probe",
    "Graph500": "BFS on an undirected Kronecker graph",
}


def _describe(name: str) -> str:
    for key, text in DESCRIPTIONS.items():
        if name.startswith(key):
            return text
    return ""


def run(scale: str = "small") -> ExperimentResult:
    rows = []
    for name in SUITE:
        workload = make_workload(name)
        module, _ = workload.build()
        function = module.function("main")
        loops = find_loops(function)
        depth = max((loop.depth for loop in loops), default=0)
        candidates = find_indirect_loads(function, loops)
        rows.append(
            [
                name,
                len(loops),
                depth,
                len(candidates),
                _describe(name),
            ]
        )
    return ExperimentResult(
        experiment="table3",
        title="Evaluation applications (paper Table 3)",
        headers=[
            "app",
            "loops",
            "max depth",
            "indirect loads",
            "description",
        ],
        rows=rows,
        summary={"applications": float(len(rows))},
        notes="Every app exposes >=1 indirect load inside a loop nest.",
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
