"""Figure 3: a schematic view of the LBR contents for a nested loop.

The paper's Fig 3 shows one LBR snapshot with outer-loop branches,
inner-loop branches, and per-entry cycle counts, from which both the
inner-loop iteration latency and the trip count are computed.  We
reproduce it with a *real* snapshot from a nested-loop workload: each
row is one LBR entry annotated as inner latch / outer latch / other,
plus the derived statistics (average iteration latency and trip count),
exactly the quantities §3.1 reads off this structure.
"""

from __future__ import annotations

from repro.analysis.loops import find_loops
from repro.core.distribution import iteration_latencies, trip_counts
from repro.experiments.result import ExperimentResult
from repro.machine.machine import Machine
from repro.profiling.collect import collect_profile
from repro.workloads.hashjoin import HashJoinWorkload


def _workload(scale: str) -> HashJoinWorkload:
    if scale == "tiny":
        return HashJoinWorkload(4, "NPO", table_entries=1 << 14, probes=3_000)
    return HashJoinWorkload(4, "NPO", table_entries=1 << 17, probes=20_000)


def run(scale: str = "small") -> ExperimentResult:
    workload = _workload(scale)
    module, space = workload.build()
    machine = Machine(module, space)
    profile = collect_profile(machine, workload.entry)

    function = module.function("main")
    loops = find_loops(function)
    inner = next(l for l in loops if l.header == "inner_h")
    outer = inner.parent
    assert outer is not None
    inner_latches = set(inner.latch_branch_pcs())
    outer_latches = set(outer.latch_branch_pcs())

    # Pick the snapshot with the most complete picture (most entries).
    sample = max(profile.lbr_samples, key=len)
    rows = []
    for index, entry in enumerate(sample):
        if entry[0] in inner_latches:
            kind = "inner latch"
        elif entry[0] in outer_latches:
            kind = "outer latch"
        else:
            kind = "other"
        rows.append([index, f"{entry[0]:#x}", f"{entry[1]:#x}", entry[2], kind])

    latencies = iteration_latencies([sample], inner.latch_branch_pcs())
    trips = trip_counts(
        [sample], inner.latch_branch_pcs(), outer.latch_branch_pcs()
    )
    avg_latency = sum(latencies) / len(latencies) if latencies else 0.0
    avg_trip = sum(trips) / len(trips) if trips else 0.0
    return ExperimentResult(
        experiment="fig3",
        title="One LBR snapshot of a nested loop (Fig 3 schematic, live data)",
        headers=["#", "from PC", "to PC", "cycle", "kind"],
        rows=rows,
        summary={
            "entries": float(len(sample)),
            "avg_inner_iteration_latency": round(avg_latency, 2),
            "avg_trip_count": round(avg_trip, 2),
        },
        notes=(
            "Paper Fig 3: 32 entries; deltas between same-latch entries "
            "give the loop latency, inner-latch runs between outer "
            "latches give the trip count (example values 2.2 and 2.5)."
        ),
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
