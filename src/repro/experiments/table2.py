"""Table 2: the machine configuration.

Prints the simulated machine side-by-side with the paper's Xeon Gold
5218 parameters, making the scaling policy explicit (capacities scaled,
latency ratios preserved; see docs/TIMING_MODEL.md).
"""

from __future__ import annotations

from repro.experiments.result import ExperimentResult
from repro.machine.config import MachineConfig


def run(scale: str = "small") -> ExperimentResult:
    memory = MachineConfig().memory
    rows = [
        [
            "Core",
            "blocking in-order, 1 cycle/ALU op",
            "Xeon Gold 5218 @2.3GHz (3.9 Turbo), OoO",
        ],
        [
            "L1 D-cache",
            f"{memory.l1.size_bytes // 1024} KiB, "
            f"{memory.l1.associativity}-way, {memory.l1.latency} cycles",
            "64 KiB/core (Table 2)",
        ],
        [
            "L2",
            f"{memory.l2.size_bytes // 1024} KiB, "
            f"{memory.l2.associativity}-way, {memory.l2.latency} cycles",
            "1 MiB/core",
        ],
        [
            "LLC",
            f"{memory.llc.size_bytes // 1024} KiB, "
            f"{memory.llc.associativity}-way, {memory.llc.latency} cycles",
            "22 MiB shared",
        ],
        [
            "Main memory",
            f"+{memory.dram_latency} cycles "
            f"(total miss {memory.llc.latency + memory.dram_latency})",
            "DDR4-2666, 6 channels, 32 GiB",
        ],
        [
            "Fill buffers",
            f"{memory.mshr_entries} entries",
            "LFBs + L2/LLC prefetch queues",
        ],
        [
            "HW prefetchers",
            f"stride (L2, degree {memory.stride_degree}) + next-line (LLC)",
            "Intel L1/L2 stream + adjacency",
        ],
        [
            "LBR",
            f"{MachineConfig().lbr_entries} entries with cycle counts",
            "32 entries (Skylake)",
        ],
    ]
    return ExperimentResult(
        experiment="table2",
        title="Machine configuration: simulator vs. paper Table 2",
        headers=["component", "this reproduction", "paper machine"],
        rows=rows,
        summary={
            "llc_kib": memory.llc.size_bytes / 1024,
            "miss_latency_cycles": float(
                memory.llc.latency + memory.dram_latency
            ),
        },
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
