"""Experiment harness: one module per paper table/figure.

Every module exposes ``run(scale) -> ExperimentResult`` with scales
"tiny" (unit tests), "small" (benches, default) and "full".
"""

from repro.experiments import (
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    ideal,
    profiling_overhead,
    table1,
    table2,
    table3,
    table4,
)
from repro.experiments.result import ExperimentResult, format_table
from repro.experiments.runner import (
    SchemeRun,
    WorkloadComparison,
    geomean,
    hints_with_distance,
    hints_with_site,
    profile_workload,
    run_ainsworth_jones,
    run_apt_get,
    run_baseline,
    run_with_hints,
    suite_comparison,
)

#: All experiments keyed by their paper id.
ALL_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "ideal": ideal,
    "profiling_overhead": profiling_overhead,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "SchemeRun",
    "WorkloadComparison",
    "format_table",
    "geomean",
    "hints_with_distance",
    "hints_with_site",
    "profile_workload",
    "run_ainsworth_jones",
    "run_apt_get",
    "run_baseline",
    "run_with_hints",
    "suite_comparison",
]
