"""Figure 7: LLC MPKI reduction.

Misses per kilo-instruction (offcore demand reads; fill-buffer hits on
prefetches count as misses, §4.4) for baseline, A&J and APT-GET.
Expected shape (paper): APT-GET reduces misses by ~65% on average vs
~48% for A&J, with the biggest reductions where Fig 6's speedups are
biggest.

The two ``timely`` columns report each scheme's ``prefetch_timeliness``
(consumed software prefetches that arrived before their demand use):
residual MPKI with low timeliness means the prefetches were issued but
too late — the failure mode Eq-1's distances exist to fix.
"""

from __future__ import annotations

from repro.experiments.result import ExperimentResult
from repro.experiments.runner import suite_comparison


def run(scale: str = "small") -> ExperimentResult:
    comparisons = suite_comparison(scale)
    rows = []
    aj_reductions = []
    apt_reductions = []
    for name, comparison in comparisons.items():
        if comparison.error:
            rows.append([name, "error", "error", "error", "error", "error"])
            continue
        base_mpki = comparison.mpki("baseline")
        aj_mpki = comparison.mpki("aj")
        apt_mpki = comparison.mpki("apt-get")
        if base_mpki > 0:
            aj_reductions.append(1.0 - aj_mpki / base_mpki)
            apt_reductions.append(1.0 - apt_mpki / base_mpki)
        rows.append(
            [
                name,
                round(base_mpki, 2),
                round(aj_mpki, 2),
                round(apt_mpki, 2),
                round(comparison.runs["aj"].perf.prefetch_timeliness, 3),
                round(
                    comparison.runs["apt-get"].perf.prefetch_timeliness, 3
                ),
            ]
        )
    def avg(values: list[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    return ExperimentResult(
        experiment="fig7",
        title="LLC MPKI (lower is better)",
        headers=[
            "workload",
            "baseline",
            "Ainsworth&Jones",
            "APT-GET",
            "A&J timely",
            "APT timely",
        ],
        rows=rows,
        summary={
            "avg_reduction_aj": round(avg(aj_reductions), 3),
            "avg_reduction_apt_get": round(avg(apt_reductions), 3),
        },
        notes="Paper: APT-GET 65.4% average reduction vs A&J 48.3%.",
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
