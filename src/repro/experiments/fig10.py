"""Figure 10: inner vs. outer injection site.

For every nested-loop workload, force all hints to the inner site and
then to the outer site and compare the speedups.  Expected shape
(paper): for short-trip-count loops (graphs, hash joins) inner-site
injection is ineffective or harmful while the outer site delivers the
gains; DFS is the exception where the inner site also helps.
"""

from __future__ import annotations

from repro.core.site import InjectionSite
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import (
    cached_baseline,
    cached_profile,
    geomean,
    hints_with_site,
    run_with_hints,
    scale_suite,
)
from repro.workloads.registry import make_workload


def run(scale: str = "small") -> ExperimentResult:
    names = [n for n in scale_suite(scale) if make_workload(n).nested]
    rows = []
    inner_speedups = []
    outer_speedups = []
    for name in names:
        baseline = cached_baseline(name, scale)
        _, hints = cached_profile(name, scale)
        if not len(hints):
            continue
        inner_run = run_with_hints(
            make_workload(name, scale),
            hints_with_site(hints, InjectionSite.INNER),
        )
        outer_run = run_with_hints(
            make_workload(name, scale),
            hints_with_site(hints, InjectionSite.OUTER),
        )
        chosen = {h.site.value for h in hints}
        inner_speedup = baseline.cycles / inner_run.cycles
        outer_speedup = baseline.cycles / outer_run.cycles
        inner_speedups.append(inner_speedup)
        outer_speedups.append(outer_speedup)
        rows.append(
            [
                name,
                round(inner_speedup, 3),
                round(outer_speedup, 3),
                "+".join(sorted(chosen)),
            ]
        )
    return ExperimentResult(
        experiment="fig10",
        title="Forced inner-site vs. outer-site injection (nested loops)",
        headers=["workload", "inner speedup", "outer speedup", "Eq-2 choice"],
        rows=rows,
        summary={
            "geomean_inner": round(geomean(inner_speedups), 3),
            "geomean_outer": round(geomean(outer_speedups), 3),
        },
        notes=(
            "Paper: outer 1.20x average; inner mostly <= 1 except DFS "
            "(1.11x)."
        ),
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
