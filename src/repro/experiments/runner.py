"""Shared measurement harness: run workloads under the three schemes
(no-prefetch baseline, Ainsworth & Jones static, APT-GET) and collect
PMU results — the reproduction's ``perf stat`` wrapper around §4.1's
methodology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.aptget import AptGet, AptGetConfig
from repro.core.hints import HintSet, PrefetchHint
from repro.core.site import InjectionSite
from repro.machine.config import MachineConfig
from repro.machine.machine import Machine, RunResult
from repro.obs import telemetry
from repro.machine.pmu import PerfStat
from repro.passes.ainsworth_jones import (
    AinsworthJonesConfig,
    AinsworthJonesPass,
    PassReport,
)
from repro.passes.aptget_pass import AptGetPass
from repro.profiling.collect import collect_profile
from repro.profiling.profile import ExecutionProfile
from repro.workloads.base import Workload
from repro.workloads.registry import SUITE, TINY_SUITE, make_workload

#: Experiment scales: tiny = unit tests, small = benches, full = big runs.
SCALES = ("tiny", "small", "full")


def geomean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class SchemeRun:
    """One scheme's measured run of one workload."""

    scheme: str
    result: RunResult
    report: Optional[PassReport] = None
    hints: Optional[HintSet] = None
    profile: Optional[ExecutionProfile] = None

    @property
    def perf(self) -> PerfStat:
        return self.result.perf

    @property
    def cycles(self) -> float:
        return self.result.counters.cycles


@dataclass
class WorkloadComparison:
    """Baseline + optimized runs of one workload.

    ``error`` is set (and ``runs`` left empty) when the workload's
    measurement job failed or timed out — the suite's error row.
    """

    workload: str
    runs: dict[str, SchemeRun] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def baseline(self) -> SchemeRun:
        return self.runs["baseline"]

    def speedup(self, scheme: str) -> float:
        run = self.runs[scheme]
        if run.cycles <= 0:
            return 0.0
        return self.baseline.cycles / run.cycles

    def instruction_overhead(self, scheme: str) -> float:
        base = self.baseline.result.counters.instructions
        if base <= 0:
            return 0.0
        return self.runs[scheme].result.counters.instructions / base

    def mpki(self, scheme: str) -> float:
        return self.runs[scheme].perf.llc_mpki


# ----------------------------------------------------------------------
# Single-scheme runners
# ----------------------------------------------------------------------
def run_baseline(
    workload: Workload, config: Optional[MachineConfig] = None
) -> SchemeRun:
    with telemetry.build_phase(workload.name, scheme="baseline"):
        module, space = workload.build()
    machine = Machine(module, space, config=config)
    with telemetry.run_phase(machine, scheme="baseline"):
        result = machine.run(workload.entry)
    return SchemeRun("baseline", result)


def run_ainsworth_jones(
    workload: Workload,
    distance: int = 32,
    config: Optional[MachineConfig] = None,
) -> SchemeRun:
    scheme = f"aj-{distance}"
    with telemetry.build_phase(workload.name, scheme=scheme):
        module, space = workload.build()
        report = AinsworthJonesPass(
            AinsworthJonesConfig(distance=distance)
        ).run(module)
    machine = Machine(module, space, config=config)
    with telemetry.run_phase(machine, scheme=scheme):
        result = machine.run(workload.entry)
    return SchemeRun(scheme, result, report=report)


def profile_workload(
    workload: Workload,
    config: Optional[MachineConfig] = None,
    period: Optional[int] = None,
) -> tuple[ExecutionProfile, HintSet]:
    """One profiling run + analysis (APT-GET steps 1-5)."""
    with telemetry.build_phase(workload.name, scheme="profile"):
        module, space = workload.build()
    machine = Machine(module, space, config=config)
    with telemetry.run_phase(machine, scheme="profile"):
        profile = collect_profile(machine, workload.entry, period=period)
    hints = AptGet(AptGetConfig()).analyze(module, profile)
    return profile, hints


def run_with_hints(
    workload: Workload,
    hints: HintSet,
    config: Optional[MachineConfig] = None,
    scheme: str = "apt-get",
) -> SchemeRun:
    with telemetry.build_phase(workload.name, scheme=scheme):
        module, space = workload.build()
        report = AptGetPass(hints).run(module)
    machine = Machine(module, space, config=config)
    with telemetry.run_phase(machine, scheme=scheme):
        result = machine.run(workload.entry)
    return SchemeRun(scheme, result, report=report, hints=hints)


def run_apt_get(
    workload: Workload,
    config: Optional[MachineConfig] = None,
) -> SchemeRun:
    profile, hints = profile_workload(workload, config=config)
    run = run_with_hints(workload, hints, config=config)
    run.profile = profile
    return run


# ----------------------------------------------------------------------
# Hint surgery for the sensitivity experiments (Figs 8, 9, 10)
# ----------------------------------------------------------------------
def hints_with_distance(hints: HintSet, distance: int) -> HintSet:
    """Copy of the hints with every distance overridden (Fig 8 sweeps)."""
    overridden = []
    for hint in hints:
        clone = PrefetchHint.from_dict(hint.to_dict())
        clone.distance = distance
        clone.outer_distance = distance
        overridden.append(clone)
    return HintSet.from_hints(overridden)


def hints_with_site(hints: HintSet, site: InjectionSite) -> HintSet:
    """Copy of the hints with the injection site forced (Fig 10)."""
    forced = []
    for hint in hints:
        clone = PrefetchHint.from_dict(hint.to_dict())
        clone.site = site
        if site is InjectionSite.OUTER and clone.outer_distance is None:
            clone.outer_distance = clone.distance
        forced.append(clone)
    return HintSet.from_hints(forced)


# ----------------------------------------------------------------------
# Per-workload caches shared across experiments, backed by the tuning
# service's artifact store (Figs 8/9/10 would otherwise re-profile the
# same binaries).  Every call returns fresh deserialized objects, so a
# caller mutating a cached result cannot poison other consumers.
# (Imports are deferred: repro.service.api imports this module.)
# ----------------------------------------------------------------------
def cached_baseline(name: str, scale: str = "small") -> SchemeRun:
    from repro.service.api import get_service

    return get_service().baseline(name, scale)


def cached_profile(
    name: str, scale: str = "small"
) -> tuple[ExecutionProfile, HintSet]:
    from repro.service.api import get_service

    return get_service().profile(name, scale)


# ----------------------------------------------------------------------
# Suite comparison shared by Figs 5/6/7/11 (cached per scale + distance)
# ----------------------------------------------------------------------
def scale_suite(scale: str) -> list[str]:
    if scale == "tiny":
        return list(TINY_SUITE)
    return list(SUITE)


def suite_comparison(
    scale: str = "small",
    aj_distance: int = 32,
) -> dict[str, WorkloadComparison]:
    """Baseline + A&J + APT-GET over the whole suite via the tuning
    service (artifacts shared with the other experiments' caches; runs
    computed in parallel when the service is configured with workers).

    A workload whose measurement failed comes back with
    ``comparison.error`` set — render it as an error row, not a crash.
    """
    from repro.service.api import get_service

    return get_service().compare_suite(scale=scale, aj_distance=aj_distance)
