"""Figure 6: headline execution-time speedups.

APT-GET vs Ainsworth & Jones vs the non-prefetching baseline across the
whole suite.  Expected shape (paper): APT-GET wins broadly (1.30x
geomean, up to 1.98x for HJ8 and BFS), A&J ~1.04x with at least one
regression (BC); APT-GET >= A&J nearly everywhere.
"""

from __future__ import annotations

from repro.experiments.result import ExperimentResult
from repro.experiments.runner import geomean, suite_comparison


def run(scale: str = "small") -> ExperimentResult:
    comparisons = suite_comparison(scale)
    rows = []
    aj_speedups = []
    apt_speedups = []
    for name, comparison in comparisons.items():
        if comparison.error:
            rows.append([name, "error", "error"])
            continue
        aj = comparison.speedup("aj")
        apt = comparison.speedup("apt-get")
        aj_speedups.append(aj)
        apt_speedups.append(apt)
        rows.append([name, round(aj, 3), round(apt, 3)])
    return ExperimentResult(
        experiment="fig6",
        title="Execution-time speedup over the non-prefetching baseline",
        headers=["workload", "Ainsworth&Jones", "APT-GET"],
        rows=rows,
        summary={
            "geomean_aj": round(geomean(aj_speedups), 3),
            "geomean_apt_get": round(geomean(apt_speedups), 3),
            "max_apt_get": round(max(apt_speedups), 3),
        },
        notes="Paper: A&J geomean 1.04x, APT-GET geomean 1.30x (max 1.98x).",
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
