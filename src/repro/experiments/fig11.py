"""Figure 11: instruction overhead of prefetch-slice injection.

Retired-instruction ratio vs. the non-prefetching baseline for A&J and
APT-GET.  Expected shape (paper): APT-GET 1.14x average vs A&J 1.19x
(APT-GET's minimal slice cloning and outer-site batching add fewer
instructions); overhead is largest for IS and RandomAccess, whose loop
bodies are tiny relative to the slice.
"""

from __future__ import annotations

from repro.experiments.result import ExperimentResult
from repro.experiments.runner import suite_comparison


def run(scale: str = "small") -> ExperimentResult:
    comparisons = suite_comparison(scale)
    rows = []
    aj_overheads = []
    apt_overheads = []
    for name, comparison in comparisons.items():
        if comparison.error:
            rows.append([name, "error", "error"])
            continue
        aj = comparison.instruction_overhead("aj")
        apt = comparison.instruction_overhead("apt-get")
        aj_overheads.append(aj)
        apt_overheads.append(apt)
        rows.append([name, round(aj, 3), round(apt, 3)])

    def avg(values: list[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    return ExperimentResult(
        experiment="fig11",
        title="Instruction overhead over the non-prefetching baseline",
        headers=["workload", "Ainsworth&Jones", "APT-GET"],
        rows=rows,
        summary={
            "avg_overhead_aj": round(avg(aj_overheads), 3),
            "avg_overhead_apt_get": round(avg(apt_overheads), 3),
        },
        notes="Paper averages: A&J 1.19x, APT-GET 1.14x.",
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
