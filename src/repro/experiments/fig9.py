"""Figure 9: static prefetch-distances {4, 16, 64} vs. the LBR distance.

Same injection machinery, distance either fixed for all loads (static,
as a compile-time flag would set it) or taken from the LBR analysis.
Expected shape (paper): static 4/16/64 reach 1.16/1.26/1.28x geomean vs
1.30x for the LBR distance; no single static value wins everywhere.
"""

from __future__ import annotations

from repro.experiments.result import ExperimentResult
from repro.experiments.runner import (
    cached_baseline,
    cached_profile,
    geomean,
    hints_with_distance,
    run_with_hints,
    scale_suite,
)
from repro.workloads.registry import make_workload

STATIC_DISTANCES = (4, 16, 64)


def run(scale: str = "small") -> ExperimentResult:
    names = scale_suite(scale)
    rows = []
    series: dict[str, list[float]] = {str(d): [] for d in STATIC_DISTANCES}
    series["lbr"] = []
    for name in names:
        baseline = cached_baseline(name, scale)
        _, hints = cached_profile(name, scale)
        if not len(hints):
            continue
        row = [name]
        for distance in STATIC_DISTANCES:
            swept = run_with_hints(
                make_workload(name, scale),
                hints_with_distance(hints, distance),
            )
            speedup = baseline.cycles / swept.cycles
            series[str(distance)].append(speedup)
            row.append(round(speedup, 3))
        lbr_run = run_with_hints(make_workload(name, scale), hints)
        lbr_speedup = baseline.cycles / lbr_run.cycles
        series["lbr"].append(lbr_speedup)
        row.append(round(lbr_speedup, 3))
        rows.append(row)
    summary = {
        f"geomean_d{d}": round(geomean(series[str(d)]), 3)
        for d in STATIC_DISTANCES
    }
    summary["geomean_lbr"] = round(geomean(series["lbr"]), 3)
    return ExperimentResult(
        experiment="fig9",
        title="Static distances vs. LBR-derived distance",
        headers=["workload"]
        + [f"static d={d}" for d in STATIC_DISTANCES]
        + ["LBR"],
        rows=rows,
        summary=summary,
        notes="Paper geomeans: 1.16x / 1.26x / 1.28x static vs 1.30x LBR.",
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
