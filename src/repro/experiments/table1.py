"""Table 1: prefetch accuracy and timeliness vs. prefetch-distance.

Microbenchmark, INNER=256, low work complexity; static injection at
distances {none, 1, 64, 1024}.  Reported per the paper's definitions:

* IPC;
* prefetch accuracy = (all_data_rd - demand_data_rd) / all_data_rd;
* late-prefetch ratio = LOAD_HIT_PRE.SW_PF over consumed prefetches.

Expected shape (paper): distance 1 -> accurate but ~all late; distance
64 -> accurate and timely; distance 1024 (beyond the trip count) ->
accuracy collapses.
"""

from __future__ import annotations

from repro.experiments.result import ExperimentResult
from repro.experiments.runner import run_ainsworth_jones, run_baseline
from repro.workloads.micro import IndirectMicrobenchmark

DISTANCES = (1, 64, 1024)

_SCALE_ITERATIONS = {"tiny": 8_000, "small": 60_000, "full": 250_000}


def _micro(scale: str) -> IndirectMicrobenchmark:
    return IndirectMicrobenchmark(
        inner=256,
        complexity="low",
        total_iterations=_SCALE_ITERATIONS.get(scale, 60_000),
    )


def run(scale: str = "small") -> ExperimentResult:
    rows = []
    baseline = run_baseline(_micro(scale))
    rows.append(
        [
            "None",
            round(baseline.perf.ipc, 3),
            round(baseline.perf.prefetch_accuracy, 3),
            0.0,
        ]
    )
    for distance in DISTANCES:
        run_result = run_ainsworth_jones(_micro(scale), distance=distance)
        counters = run_result.result.counters
        consumed = max(1, counters.sw_prefetch_useful)
        late = counters.load_hit_pre_sw_pf / consumed
        rows.append(
            [
                f"Dist-{distance}",
                round(run_result.perf.ipc, 3),
                round(run_result.perf.prefetch_accuracy, 3),
                round(late, 3),
            ]
        )
    return ExperimentResult(
        experiment="table1",
        title="Prefetch accuracy and timeliness vs. prefetch-distance",
        headers=["Prefetch", "IPC", "Prefetch Accuracy", "Late Prefetch"],
        rows=rows,
        notes=(
            "Paper: None 0.33/0%/0%, Dist-1 0.42/72%/95%, "
            "Dist-64 0.73/70%/1%, Dist-1024 0.29/3%/0%"
        ),
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
