"""§2's framing: how close does each scheme come to an *ideal* prefetcher?

The paper motivates APT-GET by showing that the state of the art "falls
significantly short of an ideal (in terms of accuracy, coverage, and
timeliness) data prefetcher".  The simulator can run that ideal directly:
``MemoryConfig.ideal_prefetching`` serves every demand load at L1 latency
(perfect coverage, perfect timeliness, zero overhead).  This experiment
reports each scheme's fraction of the ideal speedup recovered.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.result import ExperimentResult
from repro.experiments.runner import (
    cached_baseline,
    cached_profile,
    geomean,
    run_ainsworth_jones,
    run_with_hints,
    scale_suite,
)
from repro.machine.config import MachineConfig, paper_like_memory
from repro.machine.machine import Machine
from repro.workloads.registry import make_workload

IDEAL_CONFIG = MachineConfig(
    memory=dataclasses.replace(paper_like_memory(), ideal_prefetching=True)
)


def run(scale: str = "small") -> ExperimentResult:
    names = scale_suite(scale)
    rows = []
    fractions_aj = []
    fractions_apt = []
    for name in names:
        baseline = cached_baseline(name, scale)
        module, space = make_workload(name, scale).build()
        ideal = Machine(module, space, config=IDEAL_CONFIG).run("main")
        ideal_speedup = baseline.cycles / ideal.counters.cycles

        aj = run_ainsworth_jones(make_workload(name, scale))
        _, hints = cached_profile(name, scale)
        apt = run_with_hints(make_workload(name, scale), hints)
        aj_speedup = baseline.cycles / aj.cycles
        apt_speedup = baseline.cycles / apt.cycles

        def fraction(speedup: float) -> float:
            # Fraction of the ideal's cycle savings recovered.
            if ideal_speedup <= 1.0:
                return 1.0
            saved = 1.0 - 1.0 / speedup if speedup > 0 else 0.0
            ideal_saved = 1.0 - 1.0 / ideal_speedup
            return max(0.0, saved / ideal_saved)

        fractions_aj.append(fraction(aj_speedup))
        fractions_apt.append(fraction(apt_speedup))
        rows.append(
            [
                name,
                round(ideal_speedup, 3),
                round(aj_speedup, 3),
                round(apt_speedup, 3),
                round(fractions_aj[-1], 3),
                round(fractions_apt[-1], 3),
            ]
        )

    def avg(values: list[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    return ExperimentResult(
        experiment="ideal",
        title="Fraction of the ideal prefetcher's savings recovered (§2)",
        headers=[
            "workload",
            "ideal speedup",
            "A&J",
            "APT-GET",
            "A&J fraction",
            "APT-GET fraction",
        ],
        rows=rows,
        summary={
            "avg_fraction_aj": round(avg(fractions_aj), 3),
            "avg_fraction_apt_get": round(avg(fractions_apt), 3),
            "geomean_ideal": round(
                geomean([row[1] for row in rows]), 3
            ),
        },
        notes=(
            "Paper §2: static techniques are accurate but fall far short "
            "of ideal due to timeliness; APT-GET closes most of the gap."
        ),
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
