"""Figure 12: input sensitivity — profile on TRAIN, evaluate on TEST.

Because the IR structure (and hence every PC) is input-independent,
hints profiled on one dataset apply directly to a build with another
dataset — the AutoFDO stale-profile scenario of §4.9/§3.6.  Expected
shape (paper): no significant difference (1.39x train vs 1.36x test
average) — APT-GET generalizes across inputs.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments.result import ExperimentResult
from repro.experiments.runner import (
    geomean,
    profile_workload,
    run_baseline,
    run_with_hints,
)
from repro.workloads.base import Workload
from repro.workloads.bfs import BFSWorkload
from repro.workloads.dfs import DFSWorkload
from repro.workloads.graphs import dataset, synthetic_dataset
from repro.workloads.hashjoin import HashJoinWorkload
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.sssp import SSSPWorkload

#: (label, train workload factory, test workload factory) — each pair
#: shares IR structure and differs only in input data.
PAIRS: list[tuple[str, Callable[[], Workload], Callable[[], Workload]]] = [
    (
        "BFS",
        lambda: BFSWorkload(dataset("loc-Brightkite")),
        lambda: BFSWorkload(dataset("web-NotreDame")),
    ),
    (
        "DFS",
        lambda: DFSWorkload(dataset("web-Stanford")),
        lambda: DFSWorkload(dataset("web-Google")),
    ),
    (
        "PR",
        lambda: PageRankWorkload(dataset("web-Google")),
        lambda: PageRankWorkload(dataset("web-Stanford")),
    ),
    (
        "SSSP",
        lambda: SSSPWorkload(dataset("p2p-Gnutella31")),
        lambda: SSSPWorkload(dataset("roadNet-PA")),
    ),
    (
        "HJ8-NPO",
        lambda: HashJoinWorkload(8, "NPO", seed=801),
        lambda: HashJoinWorkload(8, "NPO", seed=802),
    ),
]

TINY_PAIRS: list[tuple[str, Callable[[], Workload], Callable[[], Workload]]] = [
    (
        "BFS",
        lambda: BFSWorkload(synthetic_dataset(2_000, 4, seed=31)),
        lambda: BFSWorkload(synthetic_dataset(2_000, 4, seed=32)),
    ),
]


def run(scale: str = "small") -> ExperimentResult:
    pairs = TINY_PAIRS if scale == "tiny" else PAIRS
    rows = []
    train_speedups = []
    test_speedups = []
    for label, make_train, make_test in pairs:
        _, hints = profile_workload(make_train())
        if not len(hints):
            continue
        train_baseline = run_baseline(make_train())
        train_run = run_with_hints(make_train(), hints)
        train_speedup = train_baseline.cycles / train_run.cycles

        test_baseline = run_baseline(make_test())
        test_run = run_with_hints(make_test(), hints)
        test_speedup = test_baseline.cycles / test_run.cycles

        train_speedups.append(train_speedup)
        test_speedups.append(test_speedup)
        rows.append([label, round(train_speedup, 3), round(test_speedup, 3)])
    return ExperimentResult(
        experiment="fig12",
        title="Train-input vs. test-input speedup (stale-profile scenario)",
        headers=["workload", "TRAIN-DATA speedup", "TEST-DATA speedup"],
        rows=rows,
        summary={
            "avg_train": round(geomean(train_speedups), 3),
            "avg_test": round(geomean(test_speedups), 3),
        },
        notes="Paper: 1.39x train vs 1.36x test — no significant gap.",
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
