"""Experiment result containers and ASCII rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class ExperimentResult:
    """One table/figure reproduction: a titled grid plus free-form extras."""

    experiment: str  # "table1", "fig6", ...
    title: str
    headers: list[str]
    rows: list[list[Any]]
    #: Named scalar summaries (geomeans, averages) for assertions/reports.
    summary: dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def to_text(self) -> str:
        return format_table(
            self.headers, self.rows, title=f"{self.experiment}: {self.title}",
            summary=self.summary, notes=self.notes,
        )

    def column(self, header: str) -> list[Any]:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def row_by(self, key_header: str, key: Any) -> Optional[list[Any]]:
        index = self.headers.index(key_header)
        for row in self.rows:
            if row[index] == key:
                return row
        return None


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def format_table(
    headers: list[str],
    rows: list[list[Any]],
    title: str = "",
    summary: Optional[dict[str, float]] = None,
    notes: str = "",
) -> str:
    """Render a fixed-width ASCII table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    rule = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(rule)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    if summary:
        lines.append(rule)
        for key, value in summary.items():
            lines.append(f"{key}: {_fmt(value)}")
    if notes:
        lines.append(notes)
    return "\n".join(lines)
