"""Figure 8: LBR-derived distance vs. exhaustive-best distance.

For each workload, sweep the injected prefetch-distance over
D = {1, 2, 4, 8, 16, 32, 64, 128} (same slices and sites as APT-GET,
only the distance overridden), take the best-performing distance, and
compare against the distance APT-GET computed from one LBR profile.
Expected shape (paper): the LBR distance is near-optimal everywhere
(paper geomeans: 1.30x LBR vs 1.32x exhaustive best).
"""

from __future__ import annotations

from repro.experiments.result import ExperimentResult
from repro.experiments.runner import (
    cached_baseline,
    cached_profile,
    geomean,
    hints_with_distance,
    run_with_hints,
    scale_suite,
)
from repro.workloads.registry import make_workload

DISTANCES = (1, 2, 4, 8, 16, 32, 64, 128)


def run(scale: str = "small") -> ExperimentResult:
    names = scale_suite(scale)
    distances = DISTANCES if scale != "tiny" else (1, 8, 64)
    rows = []
    lbr_speedups = []
    best_speedups = []
    for name in names:
        baseline = cached_baseline(name, scale)
        _, hints = cached_profile(name, scale)
        if not len(hints):
            continue
        lbr_run = run_with_hints(make_workload(name, scale), hints)
        lbr_speedup = baseline.cycles / lbr_run.cycles
        best_speedup, best_distance = 0.0, 0
        for distance in distances:
            swept = run_with_hints(
                make_workload(name, scale),
                hints_with_distance(hints, distance),
            )
            speedup = baseline.cycles / swept.cycles
            if speedup > best_speedup:
                best_speedup, best_distance = speedup, distance
        lbr_speedups.append(lbr_speedup)
        best_speedups.append(best_speedup)
        lbr_distance = max(h.effective_distance for h in hints)
        rows.append(
            [
                name,
                lbr_distance,
                round(lbr_speedup, 3),
                best_distance,
                round(best_speedup, 3),
            ]
        )
    return ExperimentResult(
        experiment="fig8",
        title="LBR-profiled distance vs. exhaustive best distance",
        headers=[
            "workload",
            "LBR distance",
            "LBR speedup",
            "best distance",
            "best speedup",
        ],
        rows=rows,
        summary={
            "geomean_lbr": round(geomean(lbr_speedups), 3),
            "geomean_best": round(geomean(best_speedups), 3),
        },
        notes="Paper: 1.30x (LBR) vs 1.32x (exhaustive best).",
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
