"""§4.10: profiling overhead.

The paper reports that one profiling run costs 15-20 seconds total and
that continuous datacenter profiling makes even that free.  Here we
quantify the analog: the *simulated* cost (extra cycles the profiled
binary pays — zero, since LBR/PEBS are hardware-transparent) and the
*tooling* cost (host-side wall-clock slowdown of a sampled run plus the
analysis step), together with how much data one run yields.
"""

from __future__ import annotations

import time

from repro.core.aptget import AptGet
from repro.experiments.result import ExperimentResult
from repro.machine.machine import Machine
from repro.profiling.collect import collect_profile
from repro.workloads.registry import make_workload

_WORKLOADS = {
    "tiny": ["micro-tiny", "HJ8-tiny"],
    "small": ["BFS-LBE", "HJ8-NPO", "IS-B"],
    "full": ["BFS-LBE", "HJ8-NPO", "IS-B", "PR-WG", "randAccess"],
}


def run(scale: str = "small") -> ExperimentResult:
    rows = []
    slowdowns = []
    for name in _WORKLOADS.get(scale, _WORKLOADS["small"]):
        workload = make_workload(name)

        module, space = workload.build()
        start = time.perf_counter()
        plain = Machine(module, space).run(workload.entry)
        plain_wall = time.perf_counter() - start

        module2, space2 = workload.build()
        machine = Machine(module2, space2)
        start = time.perf_counter()
        profile = collect_profile(machine, workload.entry)
        profiled_wall = time.perf_counter() - start

        start = time.perf_counter()
        hints = AptGet().analyze(module2, profile)
        analysis_wall = time.perf_counter() - start

        # Simulated overhead: cycles with sampling on vs off.  The LBR
        # and PEBS are passive hardware, so this must be exactly 0.
        profiled_cycles = machine.counters.cycles
        simulated_overhead = profiled_cycles / max(plain.counters.cycles, 1)

        slowdown = profiled_wall / max(plain_wall, 1e-9)
        slowdowns.append(slowdown)
        rows.append(
            [
                name,
                round(simulated_overhead, 4),
                round(slowdown, 2),
                round(analysis_wall, 3),
                len(profile.lbr_samples),
                len(hints),
            ]
        )
    return ExperimentResult(
        experiment="profiling_overhead",
        title="§4.10: cost of one profiling run",
        headers=[
            "workload",
            "simulated overhead (cycles ratio)",
            "host slowdown (sampled run)",
            "analysis wall (s)",
            "LBR samples",
            "hints",
        ],
        rows=rows,
        summary={
            "max_host_slowdown": round(max(slowdowns), 2),
            "simulated_overhead": 1.0,
        },
        notes=(
            "Paper: total profiling overhead 15-20s, amortized to ~zero by "
            "continuous datacenter profiling; sampling hardware itself is "
            "transparent to the profiled binary (simulated overhead = 1.0)."
        ),
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
