"""Prefetch-lifecycle event collection.

:class:`PrefetchTrace` is the sink the memory system feeds when tracing
is enabled (``Machine.enable_tracing``).  Design constraints:

* **Near-zero cost when off.**  The hierarchy guards every hook behind a
  single ``if self.trace is not None`` on paths that already miss the L1,
  so tracing-off runs pay one attribute load per slow-path event and
  nothing on the L1-hit fast path.
* **Bounded memory.**  Raw event streams (lifecycle spans, demand-miss
  stalls, taken branches) live in fixed-capacity ring buffers
  (``collections.deque(maxlen=...)``); a long run overwrites the oldest
  events.  Per-site aggregates are updated *incrementally at
  classification time*, so rollups stay exact even after the rings wrap.
* **One open record per line.**  The hierarchy guarantees at most one
  outstanding prefetched-but-unconsumed line at a time (a line in the
  MSHR or the unused table cannot be prefetched again), so open records
  key by cache-line index.

Event vocabulary (mirrors the paper's §2.3 classification):

========== ==========================================================
``timely``  line filled before its first demand use (margin >= 0)
``late``    demand load coalesced with the in-flight fill
            (Intel ``LOAD_HIT_PRE.SW_PF``; margin < 0)
``evicted`` prefetched line left the LLC before any demand use
``unused``  still unconsumed when the rollup was taken (wasted)
``mshr`` / ``unmapped`` / ``redundant``  dropped at issue
========== ==========================================================

The *timeliness margin* of a used prefetch is
``first_use_cycle - fill_ready_cycle``: positive means the line arrived
early enough (Eq 1 did its job), negative means the demand load caught
the fill in flight — late by that many cycles.
"""

from __future__ import annotations

from collections import deque
from typing import NamedTuple, Optional

from repro.obs.sites import SiteStats

#: Default ring capacity: enough for small-scale runs, bounded for full.
DEFAULT_CAPACITY = 65536


class PrefetchSpan(NamedTuple):
    """One completed prefetch lifecycle (what the timeline renders)."""

    site: str  #: injection-site label
    line: int  #: cache-line index (address >> 6)
    issue_cycle: float
    ready_cycle: float  #: when the fill completed (== issue for drops)
    end_cycle: float  #: use / eviction / drop cycle
    outcome: str  #: timely | late | evicted | mshr | unmapped | redundant
    margin: Optional[float]  #: use - ready; None when never used


class DemandEvent(NamedTuple):
    """One demand load that stalled past the L2 (timeline stall span)."""

    pc: int
    line: int
    cycle: float
    latency: float
    level: str  #: "llc" | "dram" | "coalesced"


class BranchEvent(NamedTuple):
    from_pc: int
    to_pc: int
    cycle: float


class PrefetchTrace:
    """Bounded collector of prefetch-lifecycle events.

    ``sites`` maps PREFETCH-instruction PCs to injection-site labels and
    ``site_loads`` maps delinquent-load PCs to the same labels (both are
    derived from pass-stamped IR by :func:`repro.obs.sites.site_table`);
    unknown PCs fall back to an auto-generated ``pf@0x...`` label so
    hand-written PREFETCH instructions still show up.
    """

    __slots__ = (
        "capacity",
        "sites",
        "site_loads",
        "spans",
        "demand",
        "branches",
        "stats",
        "last_cycle",
        "_open",
    )

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        sites: Optional[dict[int, str]] = None,
        site_loads: Optional[dict[int, str]] = None,
    ) -> None:
        self.capacity = int(capacity)
        self.sites = dict(sites or {})
        self.site_loads = dict(site_loads or {})
        self.spans: deque[PrefetchSpan] = deque(maxlen=self.capacity)
        self.demand: deque[DemandEvent] = deque(maxlen=self.capacity)
        self.branches: deque[BranchEvent] = deque(maxlen=self.capacity)
        #: label -> incrementally maintained aggregate.
        self.stats: dict[str, SiteStats] = {}
        self.last_cycle: float = 0.0
        #: line -> [label, issue_cycle, ready_cycle, filled?]
        self._open: dict[int, list] = {}

    # ------------------------------------------------------------------
    def _label(self, pc: int) -> str:
        label = self.sites.get(pc)
        if label is None:
            label = f"pf@{pc:#x}"
            self.sites[pc] = label
        return label

    def _stats(self, label: str) -> SiteStats:
        stats = self.stats.get(label)
        if stats is None:
            stats = self.stats[label] = SiteStats(label)
        return stats

    # ------------------------------------------------------------------
    # Hooks called by MemorySystem (software prefetches only).
    # ------------------------------------------------------------------
    def on_issue(self, pc: int, line: int, cycle: float, ready: float) -> None:
        """A software prefetch allocated a fill-buffer entry."""
        label = self._label(pc)
        self._stats(label).issued += 1
        self.last_cycle = cycle
        self._open[line] = [label, cycle, ready, False]

    def on_drop(self, pc: int, line: int, cycle: float, reason: str) -> None:
        """A software prefetch was dropped at issue.

        ``reason``: ``"mshr"`` (fill buffers full), ``"unmapped"``
        (address outside any segment) or ``"redundant"`` (line already
        cached or in flight).
        """
        label = self._label(pc)
        stats = self._stats(label)
        stats.issued += 1
        stats.record_drop(reason)
        self.last_cycle = cycle
        self.spans.append(
            PrefetchSpan(label, line, cycle, cycle, cycle, reason, None)
        )

    def on_fill(self, line: int, ready: float) -> None:
        """An in-flight software prefetch completed its fill."""
        record = self._open.get(line)
        if record is not None:
            record[2] = ready
            record[3] = True

    def on_use(self, line: int, cycle: float, late: bool) -> None:
        """First demand access consumed a software-prefetched line."""
        record = self._open.pop(line, None)
        if record is None:
            return
        label, issued, ready, _filled = record
        margin = cycle - ready
        outcome = "late" if late else "timely"
        self._stats(label).record_use(margin, late)
        self.last_cycle = cycle
        self.spans.append(
            PrefetchSpan(
                label, line, issued, ready, max(cycle, ready), outcome, margin
            )
        )

    def on_evict(self, line: int, cycle: float) -> None:
        """A software-prefetched line was evicted before any demand use."""
        record = self._open.pop(line, None)
        if record is None:
            return
        label, issued, ready, _filled = record
        self._stats(label).early_evicted += 1
        self.last_cycle = max(self.last_cycle, cycle)
        self.spans.append(
            PrefetchSpan(label, line, issued, ready, cycle, "evicted", None)
        )

    def on_demand(
        self, pc: int, line: int, cycle: float, latency: float, level: str
    ) -> None:
        """A demand load stalled past the L2 (LLC hit, DRAM miss, or a
        coalesce with an in-flight fill)."""
        self.last_cycle = cycle
        self.demand.append(DemandEvent(pc, line, cycle, latency, level))
        if level == "dram":
            label = self.site_loads.get(pc)
            if label is not None:
                self._stats(label).uncovered_misses += 1

    def on_branch(self, from_pc: int, to_pc: int, cycle: float) -> None:
        """A taken branch retired (loop-iteration reconstruction)."""
        self.branches.append(BranchEvent(from_pc, to_pc, cycle))

    # ------------------------------------------------------------------
    def open_records(self) -> dict[int, tuple]:
        """Still-unconsumed prefetches: line -> (label, issue, ready,
        filled).  Rollups count these as *unused* without mutating."""
        return {line: tuple(rec) for line, rec in self._open.items()}

    def unused_count(self) -> int:
        return len(self._open)

    def event_counts(self) -> dict[str, int]:
        """Ring occupancy — how much raw history survived the bound."""
        return {
            "spans": len(self.spans),
            "demand": len(self.demand),
            "branches": len(self.branches),
            "open": len(self._open),
        }


class BranchTap:
    """LBR wrapper that mirrors every taken branch into a trace ring.

    Installed by ``Machine.enable_tracing`` so the timeline can
    reconstruct loop iterations (latch-to-latch spans) even when LBR
    profiling is off; forwards to the wrapped LBR so profiling and
    tracing compose.
    """

    __slots__ = ("inner", "trace", "depth")

    def __init__(self, inner, trace: PrefetchTrace) -> None:
        self.inner = inner
        self.trace = trace
        self.depth = getattr(inner, "depth", 0)

    def push(self, entry: tuple) -> None:
        self.trace.branches.append(entry)
        self.inner.push(entry)

    def snapshot(self) -> tuple:
        return self.inner.snapshot()

    def clear(self) -> None:
        self.inner.clear()

    def __len__(self) -> int:
        return len(self.inner)
