"""Observability layer: prefetch-lifecycle tracing, per-site timeliness
rollups, and Chrome-trace/Perfetto timeline export.

The paper's whole argument is *timeliness* — Eq (1) picks a distance so a
prefetched line arrives just before its first demand use, Eq (2) picks an
injection site with enough run-ahead room — but aggregate counters cannot
show whether an individual hint achieved that.  This package traces every
software prefetch through issue, fill, first demand use, eviction or
drop, and rolls the events up per injection site: coverage, accuracy, and
a timeliness-margin histogram in cycles.

Entry points:

* :meth:`repro.machine.machine.Machine.enable_tracing` attaches a
  :class:`~repro.obs.trace.PrefetchTrace` to a machine;
* :func:`repro.obs.sites.site_reports` turns a trace into per-site
  rollups;
* :func:`repro.obs.timeline.chrome_trace` exports a Perfetto-loadable
  JSON timeline;
* :mod:`repro.obs.telemetry` is the *service-level* twin: span-based
  job-lifecycle tracing for the ``repro.serve`` stack, with
  :func:`~repro.obs.telemetry.merged_timeline` stitching service spans
  and the simulator timeline into one Perfetto document.
"""

from repro.obs.sites import SiteReport, site_reports, site_table
from repro.obs.telemetry import (
    JournalTail,
    Telemetry,
    merged_timeline,
    read_records,
    span_balance_problems,
    telemetry_dir,
)
from repro.obs.timeline import chrome_trace, validate_chrome_trace
from repro.obs.trace import PrefetchTrace

__all__ = [
    "JournalTail",
    "PrefetchTrace",
    "SiteReport",
    "Telemetry",
    "chrome_trace",
    "merged_timeline",
    "read_records",
    "site_reports",
    "site_table",
    "span_balance_problems",
    "telemetry_dir",
    "validate_chrome_trace",
]
