"""Observability layer: prefetch-lifecycle tracing, per-site timeliness
rollups, and Chrome-trace/Perfetto timeline export.

The paper's whole argument is *timeliness* — Eq (1) picks a distance so a
prefetched line arrives just before its first demand use, Eq (2) picks an
injection site with enough run-ahead room — but aggregate counters cannot
show whether an individual hint achieved that.  This package traces every
software prefetch through issue, fill, first demand use, eviction or
drop, and rolls the events up per injection site: coverage, accuracy, and
a timeliness-margin histogram in cycles.

Entry points:

* :meth:`repro.machine.machine.Machine.enable_tracing` attaches a
  :class:`~repro.obs.trace.PrefetchTrace` to a machine;
* :func:`repro.obs.sites.site_reports` turns a trace into per-site
  rollups;
* :func:`repro.obs.timeline.chrome_trace` exports a Perfetto-loadable
  JSON timeline.
"""

from repro.obs.sites import SiteReport, site_reports, site_table
from repro.obs.timeline import chrome_trace, validate_chrome_trace
from repro.obs.trace import PrefetchTrace

__all__ = [
    "PrefetchTrace",
    "SiteReport",
    "chrome_trace",
    "site_reports",
    "site_table",
    "validate_chrome_trace",
]
