"""Per-injection-site rollups: coverage, accuracy, and the
timeliness-margin histogram.

This is the per-hint validation of the paper's two equations: Eq (1)
chose a prefetch distance so lines arrive just in time (margin slightly
positive), Eq (2) chose a site with enough run-ahead room (few lates,
few early evictions).  A site whose margin histogram piles up below zero
got too short a distance; one whose margins are huge (or whose
evictions dominate) prefetched too early.

Margins are bucketed in cycles on a symmetric pseudo-log scale
(:data:`MARGIN_BUCKETS`); bucket *i* counts margins in
``(bounds[i-1], bounds[i]]`` with open-ended tails.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

#: Upper bounds (cycles) of the margin histogram buckets; one extra
#: bucket catches everything above the last bound.  Negative = late.
MARGIN_BUCKETS: tuple[int, ...] = (
    -4096, -1024, -256, -64, 0, 64, 256, 1024, 4096, 16384,
)

_DROP_FIELDS = {
    "mshr": "dropped_mshr",
    "unmapped": "dropped_unmapped",
    "redundant": "redundant",
}


def _bucket_labels() -> list[str]:
    labels = []
    previous = None
    for bound in MARGIN_BUCKETS:
        if previous is None:
            labels.append(f"<={bound}")
        else:
            labels.append(f"({previous},{bound}]")
        previous = bound
    labels.append(f">{MARGIN_BUCKETS[-1]}")
    return labels


BUCKET_LABELS: tuple[str, ...] = tuple(_bucket_labels())


@dataclass
class SiteStats:
    """Mutable per-site aggregate the trace maintains incrementally."""

    label: str
    issued: int = 0
    timely: int = 0
    late: int = 0
    early_evicted: int = 0
    dropped_mshr: int = 0
    dropped_unmapped: int = 0
    redundant: int = 0
    #: Demand loads at this site's delinquent-load PC that still paid a
    #: full DRAM miss — the misses prefetching failed to cover.
    uncovered_misses: int = 0
    margin_sum: float = 0.0
    margin_min: float = 0.0
    margin_max: float = 0.0
    margin_hist: list[int] = field(
        default_factory=lambda: [0] * (len(MARGIN_BUCKETS) + 1)
    )

    def record_use(self, margin: float, late: bool) -> None:
        if late:
            self.late += 1
        else:
            self.timely += 1
        used = self.timely + self.late
        if used == 1:
            self.margin_min = self.margin_max = margin
        else:
            if margin < self.margin_min:
                self.margin_min = margin
            if margin > self.margin_max:
                self.margin_max = margin
        self.margin_sum += margin
        self.margin_hist[bisect_left(MARGIN_BUCKETS, margin)] += 1

    def record_drop(self, reason: str) -> None:
        field_name = _DROP_FIELDS.get(reason)
        if field_name is None:
            raise ValueError(f"unknown drop reason {reason!r}")
        setattr(self, field_name, getattr(self, field_name) + 1)


@dataclass
class SiteReport:
    """Immutable rollup of one site over one traced run."""

    label: str
    issued: int = 0
    timely: int = 0
    late: int = 0
    early_evicted: int = 0
    unused: int = 0
    dropped_mshr: int = 0
    dropped_unmapped: int = 0
    redundant: int = 0
    uncovered_misses: int = 0
    margin_sum: float = 0.0
    margin_min: float = 0.0
    margin_max: float = 0.0
    margin_hist: list[int] = field(
        default_factory=lambda: [0] * (len(MARGIN_BUCKETS) + 1)
    )

    # -- derived ratios -------------------------------------------------
    @property
    def used(self) -> int:
        """Prefetches consumed by a demand access (timely or late)."""
        return self.timely + self.late

    @property
    def memory_reads(self) -> int:
        """Prefetches that actually started a fill (landed in the MSHR)."""
        return self.used + self.early_evicted + self.unused

    @property
    def accuracy(self) -> float:
        """Fraction of issued fills that were eventually used."""
        reads = self.memory_reads
        return self.used / reads if reads else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of this site's demand misses the prefetches absorbed
        (late coalesces count: they were misses that hit in flight)."""
        total = self.used + self.uncovered_misses
        return self.used / total if total else 0.0

    @property
    def timely_fraction(self) -> float:
        """Fraction of used prefetches whose line arrived before the
        demand access — the direct Eq-1 success metric."""
        used = self.used
        return self.timely / used if used else 0.0

    @property
    def margin_mean(self) -> float:
        used = self.used
        return self.margin_sum / used if used else 0.0

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "issued": self.issued,
            "timely": self.timely,
            "late": self.late,
            "early_evicted": self.early_evicted,
            "unused": self.unused,
            "dropped_mshr": self.dropped_mshr,
            "dropped_unmapped": self.dropped_unmapped,
            "redundant": self.redundant,
            "uncovered_misses": self.uncovered_misses,
            "margin_sum": self.margin_sum,
            "margin_min": self.margin_min,
            "margin_max": self.margin_max,
            "margin_hist": list(self.margin_hist),
            # Derived values are included for human/JSON consumers but
            # ignored by from_dict (recomputed from the raw fields).
            "accuracy": self.accuracy,
            "coverage": self.coverage,
            "timely_fraction": self.timely_fraction,
            "margin_mean": self.margin_mean,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "SiteReport":
        return cls(
            label=raw["label"],
            issued=raw.get("issued", 0),
            timely=raw.get("timely", 0),
            late=raw.get("late", 0),
            early_evicted=raw.get("early_evicted", 0),
            unused=raw.get("unused", 0),
            dropped_mshr=raw.get("dropped_mshr", 0),
            dropped_unmapped=raw.get("dropped_unmapped", 0),
            redundant=raw.get("redundant", 0),
            uncovered_misses=raw.get("uncovered_misses", 0),
            margin_sum=raw.get("margin_sum", 0.0),
            margin_min=raw.get("margin_min", 0.0),
            margin_max=raw.get("margin_max", 0.0),
            margin_hist=list(
                raw.get("margin_hist", [0] * (len(MARGIN_BUCKETS) + 1))
            ),
        )


# ----------------------------------------------------------------------
def site_table(module) -> tuple[dict[int, str], dict[int, str]]:
    """Extract (prefetch_pc -> label, load_pc -> label) from a finalized
    module whose prefetching pass stamped ``Instruction.site`` labels.

    Run *after* the pass re-finalized the module: labels survive PC
    reassignment because they live on the instruction objects.
    """
    from repro.ir.opcodes import Opcode

    prefetch_sites: dict[int, str] = {}
    load_sites: dict[int, str] = {}
    for function in module.functions.values():
        for inst in function.instructions():
            if inst.site is None:
                continue
            if inst.op is Opcode.PREFETCH:
                prefetch_sites[inst.pc] = inst.site
            elif inst.op is Opcode.LOAD:
                load_sites[inst.pc] = inst.site
    return prefetch_sites, load_sites


def site_reports(trace) -> dict[str, SiteReport]:
    """Roll a trace up into per-site reports.

    Still-open records (prefetched lines never consumed, including fills
    still in flight) are counted as ``unused`` without mutating the
    trace, so the rollup can be taken repeatedly or mid-run.
    """
    reports: dict[str, SiteReport] = {}
    for label, stats in trace.stats.items():
        reports[label] = SiteReport(
            label=label,
            issued=stats.issued,
            timely=stats.timely,
            late=stats.late,
            early_evicted=stats.early_evicted,
            dropped_mshr=stats.dropped_mshr,
            dropped_unmapped=stats.dropped_unmapped,
            redundant=stats.redundant,
            uncovered_misses=stats.uncovered_misses,
            margin_sum=stats.margin_sum,
            margin_min=stats.margin_min,
            margin_max=stats.margin_max,
            margin_hist=list(stats.margin_hist),
        )
    for record in trace.open_records().values():
        label = record[0]
        report = reports.get(label)
        if report is None:
            report = reports[label] = SiteReport(label=label)
        report.unused += 1
    return reports


def format_site_reports(
    reports: dict[str, SiteReport], histogram: bool = True
) -> str:
    """Human-readable per-site table (+ optional margin histograms)."""
    if not reports:
        return "(no software prefetch sites traced)"
    lines = [
        f"{'site':<40} {'issued':>7} {'timely':>7} {'late':>6} "
        f"{'evict':>6} {'unused':>6} {'cov':>6} {'acc':>6} {'timely%':>8}"
    ]
    for label in sorted(reports):
        r = reports[label]
        lines.append(
            f"{label:<40} {r.issued:>7} {r.timely:>7} {r.late:>6} "
            f"{r.early_evicted:>6} {r.unused:>6} "
            f"{r.coverage:>6.3f} {r.accuracy:>6.3f} "
            f"{r.timely_fraction:>8.3f}"
        )
        if histogram and r.used:
            peak = max(r.margin_hist) or 1
            for bucket_label, count in zip(BUCKET_LABELS, r.margin_hist):
                if not count:
                    continue
                bar = "#" * max(1, round(24 * count / peak))
                lines.append(
                    f"    margin {bucket_label:>14}: {count:>7} {bar}"
                )
            lines.append(
                f"    margin mean={r.margin_mean:.1f} "
                f"min={r.margin_min:.1f} max={r.margin_max:.1f} cycles"
            )
    return "\n".join(lines)
