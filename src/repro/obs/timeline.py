"""Chrome-trace (Perfetto-loadable) timeline export.

Renders a :class:`~repro.obs.trace.PrefetchTrace` as Trace Event Format
JSON (the ``{"traceEvents": [...]}`` dialect both ``chrome://tracing``
and https://ui.perfetto.dev accept).  Simulated cycles are written as
microsecond timestamps 1:1 — absolute units are meaningless in a
simulator; relative spans are what matter.

Three pseudo-processes:

* pid 1 ``prefetches`` — one thread per injection site; each used or
  evicted prefetch is a complete ("X") span from issue to fill-ready,
  with outcome and margin in ``args`` (drops become zero-length spans).
* pid 2 ``demand stalls`` — demand loads that stalled past the L2,
  one span per LLC hit / DRAM miss / in-flight coalesce.
* pid 3 ``loop iterations`` — latch-to-latch spans reconstructed from
  the traced taken-branch stream (back edges: target PC <= branch PC),
  one thread per latch.

:func:`validate_chrome_trace` is the schema check CI runs on exported
files; it returns a list of problems (empty = valid).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

_PID_PREFETCH = 1
_PID_DEMAND = 2
_PID_LOOPS = 3

#: Cap on loop-iteration spans emitted per latch so a hot loop cannot
#: bloat the file; the trace rings already bound the raw streams.
MAX_ITERATIONS_PER_LATCH = 4096


def _meta(pid: int, name: str, tid: Optional[int] = None) -> dict:
    event = {
        "name": "process_name" if tid is None else "thread_name",
        "ph": "M",
        "pid": pid,
        "tid": tid if tid is not None else 0,
        "args": {"name": name},
    }
    return event


def chrome_trace(trace, metadata: Optional[dict] = None) -> dict:
    """Build the Trace Event Format document for one traced run."""
    events: list[dict] = []
    events.append(_meta(_PID_PREFETCH, "prefetches"))
    events.append(_meta(_PID_DEMAND, "demand stalls"))
    events.append(_meta(_PID_LOOPS, "loop iterations"))

    # ------------------------------------------------------------------
    # Prefetch lifecycle spans, one tid per site.
    # ------------------------------------------------------------------
    site_tids: dict[str, int] = {}
    for span in trace.spans:
        tid = site_tids.get(span.site)
        if tid is None:
            tid = site_tids[span.site] = len(site_tids) + 1
            events.append(_meta(_PID_PREFETCH, span.site, tid))
        args = {"line": span.line, "outcome": span.outcome}
        if span.margin is not None:
            args["margin_cycles"] = span.margin
        events.append(
            {
                "name": span.outcome,
                "cat": "prefetch",
                "ph": "X",
                "pid": _PID_PREFETCH,
                "tid": tid,
                "ts": float(span.issue_cycle),
                "dur": max(float(span.ready_cycle - span.issue_cycle), 0.0),
                "args": args,
            }
        )
    # Prefetches still open when the run ended: render as spans to the
    # last observed cycle so in-flight/unused work is visible.
    end = float(trace.last_cycle)
    for line, (label, issued, ready, filled) in sorted(
        trace.open_records().items()
    ):
        tid = site_tids.get(label)
        if tid is None:
            tid = site_tids[label] = len(site_tids) + 1
            events.append(_meta(_PID_PREFETCH, label, tid))
        events.append(
            {
                "name": "unused",
                "cat": "prefetch",
                "ph": "X",
                "pid": _PID_PREFETCH,
                "tid": tid,
                "ts": float(issued),
                "dur": max(end - float(issued), 0.0),
                "args": {"line": line, "outcome": "unused", "filled": filled},
            }
        )

    # ------------------------------------------------------------------
    # Demand-miss stalls.
    # ------------------------------------------------------------------
    for event in trace.demand:
        events.append(
            {
                "name": f"{event.level} miss",
                "cat": "demand",
                "ph": "X",
                "pid": _PID_DEMAND,
                "tid": 1,
                "ts": float(event.cycle),
                "dur": max(float(event.latency), 0.0),
                "args": {"pc": event.pc, "line": event.line},
            }
        )

    # ------------------------------------------------------------------
    # Loop iterations from the taken-branch stream (LBR-style).
    # ------------------------------------------------------------------
    latch_tids: dict[int, int] = {}
    latch_prev: dict[int, float] = {}
    latch_emitted: dict[int, int] = {}
    for entry in trace.branches:
        from_pc, to_pc, cycle = entry[0], entry[1], entry[2]
        if to_pc > from_pc:  # forward branch: not a loop back edge
            continue
        previous = latch_prev.get(from_pc)
        latch_prev[from_pc] = float(cycle)
        if previous is None:
            continue
        emitted = latch_emitted.get(from_pc, 0)
        if emitted >= MAX_ITERATIONS_PER_LATCH:
            continue
        latch_emitted[from_pc] = emitted + 1
        tid = latch_tids.get(from_pc)
        if tid is None:
            tid = latch_tids[from_pc] = len(latch_tids) + 1
            events.append(_meta(_PID_LOOPS, f"latch {from_pc:#x}", tid))
        events.append(
            {
                "name": "iteration",
                "cat": "loop",
                "ph": "X",
                "pid": _PID_LOOPS,
                "tid": tid,
                "ts": previous,
                "dur": max(float(cycle) - previous, 0.0),
                "args": {"latch_pc": from_pc, "target_pc": to_pc},
            }
        )

    document = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.obs",
            "time_unit": "cycles (written as us)",
            "ring_occupancy": trace.event_counts(),
        },
    }
    if metadata:
        document["otherData"].update(metadata)
    return document


def write_chrome_trace(
    trace, path, metadata: Optional[dict] = None
) -> dict:
    """Export ``trace`` to ``path`` as Chrome-trace JSON; returns the
    document (handy for immediate validation)."""
    document = chrome_trace(trace, metadata=metadata)
    Path(path).write_text(json.dumps(document))
    return document


# ----------------------------------------------------------------------
# Schema validation (the CI smoke check).
# ----------------------------------------------------------------------
_REQUIRED_EVENT_FIELDS = ("name", "ph", "pid", "tid")
_KNOWN_PHASES = {"X", "B", "E", "M", "i", "I", "C"}


def validate_chrome_trace(document) -> list[str]:
    """Validate a Trace Event Format document; returns problem strings.

    Checks the subset of the spec Perfetto's JSON importer relies on:
    the envelope shape, per-event required fields, known phase types,
    numeric non-negative timestamps, and ``dur`` presence on complete
    ("X") events.
    """
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for fieldname in _REQUIRED_EVENT_FIELDS:
            if fieldname not in event:
                problems.append(f"{where}: missing {fieldname!r}")
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if phase == "M":
            continue  # metadata events carry no timestamps
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: args is not an object")
    return problems
