"""Service-level span telemetry for the ``repro.serve`` stack.

PR 2's :mod:`repro.obs.trace` made *timeliness* visible inside one
simulated run; this module is its service-level twin.  Every job the
controller/agent service touches carries a ``trace_id``, and every
lifecycle transition (submit → queued → claimed → running →
done/failed/lost, plus retries and lease reclaims) and every execution
phase (``execute`` → ``engine.build`` → ``engine.run`` → ``store.put``)
is journaled as a structured span event, so a single merged view spans
the HTTP POST all the way down to an individual prefetch fill.

Journal layout (crash-safe, single-writer-per-file — the same protocol
as the ``metrics-<pid>.json`` snapshots next door):

* ``<queue-dir>/telemetry/spans-<pid>.jsonl`` — one JSON object per
  line, appended and flushed per event.  A SIGKILL can tear at most the
  final line; readers skip incomplete lines, so a torn journal degrades
  to "one missing event", never a parse error.
* ``<queue-dir>/telemetry/sim-<trace_id>.json`` — a simulator-level
  Chrome-trace document (PR 2's prefetch-lifecycle timeline) exported
  by a traced job (e.g. a ``SiteReportRequest``), keyed by the job's
  trace id so :func:`merged_timeline` can stitch the two layers.

Event records::

    {"t": <wall seconds>, "pid": <os pid>, "seq": <per-pid counter>,
     "ev": "open"|"close"|"point", "trace": "tr-…", "job": "j-…",
     "span": "<span id>", "name": "running", "parent": "…",
     "attrs": {...}}

Span ids are **deterministic** (``<job>:<state>:a<attempt>`` for queue
states, ``<job>:x<attempt>.<n>`` for execution phases), so the process
that closes a span need not be the one that opened it — the agent
closes the ``queued`` span the controller opened.  The balance
invariant (:func:`span_balance_problems`) is therefore a *multiset*
contract: per span id, opens == closes.  A revived job legitimately
opens its root span twice and closes it twice.

Execution-phase hooks are **context-local**: :func:`job_scope`
establishes the active job on a :class:`contextvars.ContextVar`, and
the deep layers (:mod:`repro.experiments.runner`,
:class:`~repro.service.api.TuningService`) emit through
:func:`phase`/:func:`annotate`, which are no-ops when no job is active
— the same ``if trace is not None`` observation discipline PR 2's
memory-system hooks follow.  Telemetry observes the service; it never
changes what a job computes (enforced by tests: results are
byte-identical with telemetry on and off).
"""

from __future__ import annotations

import contextvars
import json
import os
import tempfile
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator, Optional

#: Chrome-trace pseudo-pid for service spans; PR 2's simulator timeline
#: uses pids 1-3, so the merged document keeps the layers separable.
PID_SERVICE = 10

#: Event vocabulary.
EVENTS = ("open", "close", "point")


def telemetry_dir(queue_dir: str | os.PathLike) -> Path:
    """Where one queue's span journals live (sibling of ``metrics/``)."""
    return Path(queue_dir) / "telemetry"


def sim_trace_path(directory: str | os.PathLike, trace_id: str) -> Path:
    """The simulator-timeline file exported for one trace id."""
    return Path(directory) / f"sim-{trace_id}.json"


def _record_key(record: dict) -> tuple:
    """Deterministic merge order: wall time, then pid, then seq."""
    return (
        record.get("t", 0.0),
        record.get("pid", 0),
        record.get("seq", 0),
    )


class Telemetry:
    """One process's append-only span journal (``spans-<pid>.jsonl``).

    Single-writer: each process only ever appends to its own file, so
    concurrent controller/agent processes cannot interleave partial
    lines.  Thread-safe within the process (the HTTP front end journals
    submissions from handler threads).  ``clock`` is injectable so the
    queue's deterministic test clocks stamp deterministic timestamps.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        pid: Optional[int] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.directory = Path(directory)
        self.pid = os.getpid() if pid is None else pid
        self.clock = clock
        self.path = self.directory / f"spans-{self.pid}.jsonl"
        self._lock = threading.Lock()
        self._seq = 0
        self._handle = None

    # ------------------------------------------------------------------
    def emit(
        self,
        ev: str,
        *,
        trace: str,
        name: str,
        span: Optional[str] = None,
        parent: Optional[str] = None,
        job: Optional[str] = None,
        t: Optional[float] = None,
        **attrs,
    ) -> dict:
        """Append one event; returns the record written."""
        record: dict = {
            "ev": ev,
            "trace": trace,
            "name": name,
            "t": float(self.clock() if t is None else t),
            "pid": self.pid,
        }
        if span is not None:
            record["span"] = span
        if parent is not None:
            record["parent"] = parent
        if job is not None:
            record["job"] = job
        if attrs:
            record["attrs"] = attrs
        with self._lock:
            record["seq"] = self._seq
            self._seq += 1
            if self._handle is None:
                self.directory.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
        return record

    def open_span(self, trace, span, name, *, parent=None, job=None,
                  t=None, **attrs) -> dict:
        return self.emit("open", trace=trace, span=span, name=name,
                         parent=parent, job=job, t=t, **attrs)

    def close_span(self, trace, span, name, *, job=None, t=None,
                   **attrs) -> dict:
        return self.emit("close", trace=trace, span=span, name=name,
                         job=job, t=t, **attrs)

    def point(self, trace, name, *, span=None, job=None, t=None,
              **attrs) -> dict:
        return self.emit("point", trace=trace, span=span, name=name,
                         job=job, t=t, **attrs)

    def put_sim_trace(self, trace_id: str, document: dict) -> Path:
        """Atomically write the simulator Chrome-trace for ``trace_id``."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = sim_trace_path(self.directory, trace_id)
        fd, tmp_name = tempfile.mkstemp(
            prefix=".tmp-sim-", suffix=".json", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(document))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


# ----------------------------------------------------------------------
# The context-local job scope: how deep layers find the active job.
# ----------------------------------------------------------------------
_CONTEXT: contextvars.ContextVar[Optional["JobContext"]] = (
    contextvars.ContextVar("repro_obs_telemetry", default=None)
)


def current() -> Optional["JobContext"]:
    """The active job context, or ``None`` (the common, zero-cost case)."""
    return _CONTEXT.get()


class JobContext:
    """One job execution's span-emission state (stack + id allocator)."""

    def __init__(
        self,
        telemetry: Telemetry,
        *,
        trace: str,
        job: str,
        attempts: int = 0,
    ) -> None:
        self.telemetry = telemetry
        self.trace = trace
        self.job = job
        self._prefix = f"{job}:x{attempts}"
        self._counter = 0
        self._stack: list[str] = []

    def open(self, name: str, **attrs) -> str:
        sid = f"{self._prefix}.{self._counter}"
        self._counter += 1
        parent = self._stack[-1] if self._stack else self.job
        self.telemetry.open_span(
            self.trace, sid, name, parent=parent, job=self.job, **attrs
        )
        self._stack.append(sid)
        return sid

    def close(self, sid: str, name: str, **attrs) -> None:
        if self._stack and self._stack[-1] == sid:
            self._stack.pop()
        self.telemetry.close_span(self.trace, sid, name, job=self.job, **attrs)

    def point(self, name: str, **attrs) -> None:
        span = self._stack[-1] if self._stack else self.job
        self.telemetry.point(
            self.trace, name, span=span, job=self.job, **attrs
        )

    def put_sim_trace(self, document: dict) -> Path:
        path = self.telemetry.put_sim_trace(self.trace, document)
        self.point("sim-trace", path=path.name)
        return path


@contextmanager
def job_scope(
    telemetry: Telemetry,
    *,
    trace: str,
    job: str,
    attempts: int = 0,
    **attrs,
) -> Iterator[dict]:
    """Run a job under an ``execute`` span; yields the close-attrs dict.

    The agent wraps each job execution in one of these; everything the
    service layer does inside (engine phases, store writes) nests under
    the ``execute`` span via :func:`phase`.
    """
    ctx = JobContext(telemetry, trace=trace, job=job, attempts=attempts)
    token = _CONTEXT.set(ctx)
    sid = ctx.open("execute", **attrs)
    started = time.perf_counter()
    extra: dict = {}
    try:
        yield extra
    finally:
        extra.setdefault("seconds", round(time.perf_counter() - started, 6))
        _CONTEXT.reset(token)
        ctx.close(sid, "execute", **extra)


@contextmanager
def phase(name: str, **attrs) -> Iterator[Optional[dict]]:
    """A named child span under the active job — or a no-op.

    Yields a mutable dict the caller may extend; its contents land in
    the close event's ``attrs`` (plus the measured ``seconds``).
    """
    ctx = _CONTEXT.get()
    if ctx is None:
        yield None
        return
    sid = ctx.open(name, **attrs)
    started = time.perf_counter()
    extra: dict = {}
    try:
        yield extra
    finally:
        extra.setdefault("seconds", round(time.perf_counter() - started, 6))
        ctx.close(sid, name, **extra)


def annotate(name: str, **attrs) -> None:
    """Emit an instant event under the active job (no-op outside one)."""
    ctx = _CONTEXT.get()
    if ctx is not None:
        ctx.point(name, **attrs)


# ----------------------------------------------------------------------
# Engine-phase helpers: graph-cache + compile/execute attribution.
# ----------------------------------------------------------------------
@contextmanager
def build_phase(workload: str, **attrs) -> Iterator[Optional[dict]]:
    """``engine.build`` span around workload construction + passes,
    annotated with the graph-generation cache's hit/miss delta."""
    ctx = _CONTEXT.get()
    if ctx is None:
        yield None
        return
    from repro.workloads.graphs import graph_store

    metrics = graph_store().metrics
    hits = metrics.get("graph_cache.hits")
    misses = metrics.get("graph_cache.misses")
    with phase("engine.build", workload=workload, **attrs) as extra:
        try:
            yield extra
        finally:
            extra["graph_cache_hits"] = metrics.get("graph_cache.hits") - hits
            extra["graph_cache_misses"] = (
                metrics.get("graph_cache.misses") - misses
            )


@contextmanager
def run_phase(machine, **attrs) -> Iterator[Optional[dict]]:
    """``engine.run`` span around a machine run, annotated at close with
    the engine's profiling stats: the compile-vs-execute wall split and
    (on the turbo tier) superblock bulk-stepping/guard-bail counts."""
    ctx = _CONTEXT.get()
    if ctx is None:
        yield None
        return
    with phase("engine.run", engine=machine.engine, **attrs) as extra:
        try:
            yield extra
        finally:
            extra.update(machine.engine_run_stats())


# ----------------------------------------------------------------------
# Journal readers (merge + tail).
# ----------------------------------------------------------------------
class JournalTail:
    """Incremental reader over every ``spans-*.jsonl`` in a directory.

    Remembers a byte offset per file and only ever consumes *complete*
    lines, so concurrently-appended (or SIGKILL-torn) journals are safe
    to tail.  Used by the streaming endpoint; a fresh tail's first
    :meth:`poll` is a full merged read.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        trace: Optional[str] = None,
        job: Optional[str] = None,
    ) -> None:
        self.directory = Path(directory)
        self.trace = trace
        self.job = job
        self._offsets: dict[Path, int] = {}

    def _match(self, record: dict) -> bool:
        if self.job is not None and record.get("job") != self.job:
            return False
        if self.trace is not None and record.get("trace") != self.trace:
            return False
        return True

    def poll(self) -> list[dict]:
        """New records since the last poll, merged and sorted."""
        records: list[dict] = []
        if not self.directory.is_dir():
            return records
        for path in sorted(self.directory.glob("spans-*.jsonl")):
            offset = self._offsets.get(path, 0)
            try:
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    data = handle.read()
            except OSError:
                continue
            if not data:
                continue
            complete = data.rfind(b"\n")
            if complete < 0:
                continue  # only a torn tail so far
            self._offsets[path] = offset + complete + 1
            for line in data[:complete].split(b"\n"):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn/corrupt line: skip, never crash
                if isinstance(record, dict) and self._match(record):
                    records.append(record)
        records.sort(key=_record_key)
        return records


def read_records(
    directory: str | os.PathLike,
    *,
    trace: Optional[str] = None,
    job: Optional[str] = None,
) -> list[dict]:
    """Every journaled record (merged across pids, sorted, filtered)."""
    return JournalTail(directory, trace=trace, job=job).poll()


def render_records(records: list[dict]) -> str:
    """Canonical NDJSON rendering — what the streaming endpoint serves.

    Deterministic (sorted keys, merge-sorted records), so replaying a
    finished job twice is byte-identical.
    """
    return "".join(
        json.dumps(record, sort_keys=True) + "\n" for record in records
    )


# ----------------------------------------------------------------------
# Invariants: the balanced open/close multiset contract.
# ----------------------------------------------------------------------
def span_balance_problems(
    records: list[dict], require_closed: bool = True
) -> list[str]:
    """Check span accounting; returns problem strings (empty = OK).

    Per span id, closes must never lead opens in merged order, and —
    when ``require_closed`` (i.e. the job reached a terminal state) —
    every open must be matched by a close.  A SIGKILLed agent
    legitimately leaves spans open until the reaper closes the state
    span; ``require_closed=False`` checks an in-flight stream.
    """
    problems: list[str] = []
    opens: dict[str, int] = {}
    closes: dict[str, int] = {}
    for record in records:
        ev = record.get("ev")
        sid = record.get("span")
        if ev == "point" or sid is None:
            continue
        if ev == "open":
            opens[sid] = opens.get(sid, 0) + 1
        elif ev == "close":
            closes[sid] = closes.get(sid, 0) + 1
            if closes[sid] > opens.get(sid, 0):
                problems.append(f"span {sid}: close precedes open")
    if require_closed:
        for sid, count in sorted(opens.items()):
            if closes.get(sid, 0) != count:
                problems.append(
                    f"span {sid}: {count} open(s), "
                    f"{closes.get(sid, 0)} close(s)"
                )
    return problems


# ----------------------------------------------------------------------
# The merged Perfetto timeline: HTTP POST down to prefetch fills.
# ----------------------------------------------------------------------
def service_trace_events(records: list[dict]) -> tuple[list[dict], dict]:
    """Service span records -> Chrome-trace events (pid ``PID_SERVICE``,
    one tid per job).  Returns ``(events, engine_run_ts)`` where the
    latter maps trace id -> the rebased µs timestamp of its first
    ``engine.run`` open (the anchor simulator events are shifted to).
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": PID_SERVICE,
            "tid": 0,
            "args": {"name": "service"},
        }
    ]
    if not records:
        return events, {}
    t0 = records[0].get("t", 0.0)
    tids: dict[str, int] = {}
    engine_run_ts: dict[str, float] = {}
    for record in records:
        lane = record.get("job") or record.get("trace") or "?"
        tid = tids.get(lane)
        if tid is None:
            tid = tids[lane] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": PID_SERVICE,
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
        ts = max((record.get("t", t0) - t0) * 1e6, 0.0)
        args = dict(record.get("attrs") or {})
        args["trace"] = record.get("trace")
        args["pid"] = record.get("pid")
        ev = record.get("ev")
        if ev == "open":
            ph = "B"
            if record.get("name") == "engine.run":
                engine_run_ts.setdefault(record.get("trace"), ts)
        elif ev == "close":
            ph = "E"
        else:
            ph = "i"
            args["span"] = record.get("span")
        events.append(
            {
                "name": record.get("name", "?"),
                "cat": "service",
                "ph": ph,
                "pid": PID_SERVICE,
                "tid": tid,
                "ts": ts,
                "args": args,
            }
        )
    return events, engine_run_ts


def merged_timeline(
    directory: str | os.PathLike,
    *,
    job: Optional[str] = None,
    trace: Optional[str] = None,
    metadata: Optional[dict] = None,
) -> dict:
    """One Chrome-trace document spanning both layers.

    Service job spans (submit → … → done) render under pid
    ``PID_SERVICE``; any simulator timeline exported for the selected
    trace id(s) (``sim-<trace>.json``, PR 2's prefetch-lifecycle /
    demand-stall / loop-iteration processes) is embedded with its
    timestamps shifted onto the job's ``engine.run`` span, so an
    individual prefetch fill lines up inside the service span that
    caused it.  The result passes
    :func:`repro.obs.timeline.validate_chrome_trace`.
    """
    directory = Path(directory)
    records = read_records(directory, trace=trace, job=job)
    if not records:
        where = job or trace or "any job"
        raise ValueError(
            f"no telemetry records for {where} under {directory}"
        )
    events, engine_run_ts = service_trace_events(records)
    traces = sorted(
        {r.get("trace") for r in records if r.get("trace") is not None}
    )
    embedded = []
    for trace_id in traces:
        path = sim_trace_path(directory, trace_id)
        if not path.exists():
            continue
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        offset = engine_run_ts.get(trace_id, 0.0)
        for event in document.get("traceEvents", []):
            if not isinstance(event, dict):
                continue
            event = dict(event)
            if event.get("ph") != "M":
                event["ts"] = float(event.get("ts", 0.0)) + offset
            events.append(event)
        embedded.append(trace_id)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.obs.telemetry",
            "time_unit": "wall microseconds (sim cycles embedded 1:1)",
            "traces": traces,
            "sim_traces": embedded,
        },
    }
    if metadata:
        document["otherData"].update(metadata)
    return document
