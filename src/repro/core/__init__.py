"""APT-GET's core contribution: LBR analysis, Eq-1 distance, Eq-2 site."""

from repro.core.aptget import AptGet, AptGetConfig, LoadAnalysis
from repro.core.distance import (
    MAX_DISTANCE,
    MIN_DISTANCE,
    DistanceEstimate,
    optimal_distance,
)
from repro.core.distribution import (
    LatencyDistribution,
    analyze_latency_distribution,
    iteration_latencies,
    trip_counts,
)
from repro.core.hints import HintSet, PrefetchHint
from repro.core.site import (
    DEFAULT_K,
    InjectionSite,
    SiteDecision,
    choose_injection_site,
    k_for_coverage,
)

__all__ = [
    "AptGet",
    "AptGetConfig",
    "DEFAULT_K",
    "DistanceEstimate",
    "HintSet",
    "InjectionSite",
    "LatencyDistribution",
    "LoadAnalysis",
    "MAX_DISTANCE",
    "MIN_DISTANCE",
    "PrefetchHint",
    "SiteDecision",
    "analyze_latency_distribution",
    "choose_injection_site",
    "iteration_latencies",
    "k_for_coverage",
    "optimal_distance",
    "trip_counts",
]
