"""APT-GET's analytical pipeline: profile -> prefetch hints (paper §3.4).

Fully automated steps, mirroring the paper:

1. rank delinquent load PCs from PEBS-style samples;
2. map each PC to its IR instruction and innermost loop (exact AutoFDO);
3. measure the loop's iteration-latency distribution from LBR snapshots
   and detect peaks (``find_peaks_cwt``);
4. Equation (1): prefetch-distance = ceil(MC / IC);
5. measure inner-loop trip counts; Equation (2) selects inner vs outer
   injection, with the outer distance computed on the outer loop's own
   latency distribution;
6. emit a hint list for the injection pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.loops import Loop, find_loops, innermost_loop_of
from repro.core.distance import DistanceEstimate, optimal_distance
from repro.core.distribution import (
    LatencyDistribution,
    analyze_latency_distribution,
    iteration_latencies,
    trip_counts,
)
from repro.core.hints import HintSet, PrefetchHint
from repro.core.site import DEFAULT_K, InjectionSite, choose_injection_site
from repro.ir.nodes import IRError, Module
from repro.ir.opcodes import Opcode
from repro.profiling.profile import ExecutionProfile


@dataclass(frozen=True)
class AptGetConfig:
    """Tunables of the analysis (paper defaults)."""

    #: Eq-2 constant; 5 targets 80% coverage.
    k: float = DEFAULT_K
    #: How many delinquent loads to optimize per profile.
    top_loads: int = 10
    #: Minimum PEBS hits for a load to count as delinquent.
    min_miss_count: int = 8
    #: Outer-site sweep of inner iterations: auto = round(avg trip count).
    sweep_auto: bool = True
    max_sweep: int = 8
    #: Delinquency cutoff: a load only counts as 'inducing frequent LLC
    #: misses' (§3.2) if it contributes at least this share of the total
    #: sampled miss latency.  Prunes noise loads whose slice overhead
    #: would outweigh the stalls they cause (also the direction of the
    #: paper's §4.8 'conditional prefetch slice injection' future work).
    #: Set to 0.0 for no filtering.
    min_latency_share: float = 0.02


@dataclass
class LoadAnalysis:
    """Diagnostics for one delinquent load (useful for reports/tests)."""

    load_pc: int
    function: str
    inner_distribution: LatencyDistribution
    inner_estimate: DistanceEstimate
    outer_distribution: Optional[LatencyDistribution]
    outer_estimate: Optional[DistanceEstimate]
    trip_count: Optional[float]
    hint: Optional[PrefetchHint]


class AptGet:
    """The profile-guided analysis engine."""

    def __init__(self, config: Optional[AptGetConfig] = None) -> None:
        self.config = config or AptGetConfig()

    # ------------------------------------------------------------------
    def analyze(self, module: Module, profile: ExecutionProfile) -> HintSet:
        """Produce prefetch hints for every delinquent load in ``profile``."""
        hints = HintSet()
        total_latency = sum(profile.load_miss_latency.values()) or 1
        for load_pc in profile.delinquent_loads(
            top=self.config.top_loads, min_count=self.config.min_miss_count
        ):
            share = profile.load_miss_latency.get(load_pc, 0) / total_latency
            if share < self.config.min_latency_share:
                continue  # conditional injection: not worth the overhead
            analysis = self.analyze_load(module, profile, load_pc)
            if analysis is not None and analysis.hint is not None:
                hints.append(analysis.hint)
        return hints

    # ------------------------------------------------------------------
    def analyze_load(
        self, module: Module, profile: ExecutionProfile, load_pc: int
    ) -> Optional[LoadAnalysis]:
        """Full distribution + Eq-1 + Eq-2 analysis of one load PC."""
        if not module.has_pc(load_pc):
            return None
        instruction = module.instruction_at(load_pc)
        if instruction.op is not Opcode.LOAD:
            return None
        block = module.block_at(load_pc)
        function = block.function
        loops = find_loops(function)
        inner = innermost_loop_of(loops, block.name)
        if inner is None:
            return None  # load not in a loop: nothing to time against

        inner_latencies = iteration_latencies(
            profile.lbr_samples, inner.latch_branch_pcs()
        )
        inner_distribution = analyze_latency_distribution(inner_latencies)
        inner_estimate = optimal_distance(inner_distribution)

        outer = inner.parent
        outer_distribution: Optional[LatencyDistribution] = None
        outer_estimate: Optional[DistanceEstimate] = None
        trip: Optional[float] = None
        if outer is not None:
            trips = trip_counts(
                profile.lbr_samples,
                inner.latch_branch_pcs(),
                outer.latch_branch_pcs(),
            )
            if trips:
                trip = sum(trips) / len(trips)
            outer_latencies = iteration_latencies(
                profile.lbr_samples, outer.latch_branch_pcs()
            )
            outer_distribution = analyze_latency_distribution(outer_latencies)
            outer_estimate = optimal_distance(outer_distribution)

        decision = choose_injection_site(
            trip_count=trip if trip is not None else float("inf"),
            inner_distance=inner_estimate.distance,
            k=self.config.k,
            outer_available=(
                outer is not None
                and outer_estimate is not None
                and outer_estimate.reliable
                and trip is not None
            ),
        )

        sweep = 1
        if decision.site is InjectionSite.OUTER and self.config.sweep_auto:
            sweep = max(1, min(self.config.max_sweep, round(trip or 1.0)))

        hint = PrefetchHint(
            load_pc=load_pc,
            function=function.name,
            distance=inner_estimate.distance,
            site=decision.site,
            outer_distance=(
                outer_estimate.distance
                if (outer_estimate is not None and outer_estimate.reliable)
                else None
            ),
            trip_count=trip,
            ic_latency=inner_estimate.ic_latency,
            mc_latency=inner_estimate.mc_latency,
            lbr_iterations_measured=inner_estimate.samples,
            sweep=sweep,
        )
        return LoadAnalysis(
            load_pc=load_pc,
            function=function.name,
            inner_distribution=inner_distribution,
            inner_estimate=inner_estimate,
            outer_distribution=outer_distribution,
            outer_estimate=outer_estimate,
            trip_count=trip,
            hint=hint,
        )
