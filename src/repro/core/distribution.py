"""Loop-latency distribution analysis from LBR samples (paper §3.1-3.2).

Given LBR snapshots, two instances of the same loop-latch branch PC
delimit one loop iteration; subtracting their cycle counts yields one
iteration-latency measurement.  The latency distribution of a loop whose
body contains a delinquent load is multi-modal (Fig 4): one peak per
memory-hierarchy level serving the load.  Peaks are detected with
``scipy.signal.find_peaks_cwt`` exactly as the paper does (§3.4), with a
robust clustering fallback for degenerate histograms.

Degraded inputs (the documented fallback contract, relied on by
``repro.core.distance.optimal_distance`` and checked by the QA model
oracle):

* **empty input** — no peaks, every latency component 0; downstream
  distance estimation falls back to ``MIN_DISTANCE`` and flags the
  estimate unreliable rather than raising;
* **single-peak input** (the load always hits, so no memory mode) —
  one peak, hence ``ic_latency == miss_latency`` and ``mc_latency``
  clamps to 0; again distance ``MIN_DISTANCE``, unreliable.

Prefetch injection is an optimization, so "not enough signal" must
degrade to "don't prefetch", never to an exception.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np
from scipy.signal import find_peaks_cwt

#: Histogram bin width in cycles.
BIN_WIDTH = 4
#: Peaks whose mass is below this fraction of the dominant peak are noise.
PEAK_MASS_THRESHOLD = 0.02


def iteration_latencies(
    samples: Iterable[tuple], latch_pcs: Sequence[int]
) -> list[int]:
    """Extract loop-iteration latencies for a loop from LBR snapshots.

    ``latch_pcs``: the PCs of the loop's back-edge branches.  Within each
    snapshot, the cycle delta between consecutive occurrences of a latch
    PC is one iteration latency.
    """
    latch_set = set(latch_pcs)
    deltas: list[int] = []
    for sample in samples:
        previous_cycle = None
        for entry in sample:
            if entry[0] in latch_set:
                cycle = entry[2]
                if previous_cycle is not None:
                    delta = cycle - previous_cycle
                    if delta > 0:
                        deltas.append(delta)
                previous_cycle = cycle
    return deltas


def trip_counts(
    samples: Iterable[tuple],
    inner_latch_pcs: Sequence[int],
    outer_latch_pcs: Sequence[int],
) -> list[int]:
    """Inner-loop trip counts: number of inner back-edges between two
    consecutive outer back-edges in a snapshot (paper §3.1, Fig 3).

    The count of inner latch hits is the number of inner back-edges, i.e.
    iterations minus one; we therefore report hits + 1.
    """
    inner = set(inner_latch_pcs)
    outer = set(outer_latch_pcs)
    counts: list[int] = []
    for sample in samples:
        in_window = False
        inner_hits = 0
        for entry in sample:
            pc = entry[0]
            if pc in outer:
                if in_window:
                    counts.append(inner_hits + 1)
                inner_hits = 0
                in_window = True
            elif pc in inner:
                inner_hits += 1
        # A trailing window without a closing outer branch is discarded:
        # it may be truncated by the 32-entry LBR depth.
    return counts


@dataclass
class LatencyDistribution:
    """Histogram of loop-iteration latencies with detected peaks."""

    latencies: list[int]
    bin_width: int = BIN_WIDTH
    peaks: list[int] = field(default_factory=list)  # cycle positions
    peak_masses: list[int] = field(default_factory=list)  # sample counts

    @property
    def count(self) -> int:
        return len(self.latencies)

    @property
    def ic_latency(self) -> int:
        """Instruction-component latency: the lowest significant peak —
        the loop's execution time when the load hits in near caches."""
        return self.peaks[0] if self.peaks else 0

    @property
    def miss_latency(self) -> int:
        """Iteration latency when the load is served by memory: the
        highest significant peak."""
        return self.peaks[-1] if self.peaks else 0

    @property
    def mc_latency(self) -> int:
        """Memory component: the hideable part (highest - lowest peak)."""
        return max(self.miss_latency - self.ic_latency, 0)


def analyze_latency_distribution(
    latencies: Sequence[int],
    bin_width: int = BIN_WIDTH,
    max_peaks: int = 6,
) -> LatencyDistribution:
    """Histogram the latencies and locate the per-level peaks.

    Primary detector: continuous-wavelet-transform peak finding
    (``scipy.signal.find_peaks_cwt``), as named in paper §3.4.  Fallback:
    greedy mode clustering, used when CWT finds nothing (tiny or spiky
    histograms).
    """
    distribution = LatencyDistribution(list(latencies), bin_width=bin_width)
    if not latencies:
        return distribution
    values = np.asarray(latencies, dtype=np.int64)
    top = int(values.max())
    bins = top // bin_width + 1
    histogram = np.bincount(values // bin_width, minlength=bins)

    peak_bins: list[int] = []
    if bins >= 8:
        widths = np.arange(1, max(3, min(12, bins // 4)))
        try:
            # scipy's CWT peak finder divides by zero on flat noise
            # estimates; suppress that locally instead of mutating the
            # process-global warning filters at import time.
            with warnings.catch_warnings(), np.errstate(
                divide="ignore", invalid="ignore"
            ):
                warnings.filterwarnings("ignore", category=RuntimeWarning)
                raw = find_peaks_cwt(histogram.astype(float), widths)
        except Exception:  # pragma: no cover - scipy internals
            raw = []
        peak_bins = [int(b) for b in raw if 0 <= int(b) < bins]
    # CWT can miss narrow modes on spiky histograms; union with local
    # maxima of the smoothed histogram (the mass filter below prunes any
    # noise maxima this adds).
    peak_bins = sorted(set(peak_bins) | set(_cluster_modes(histogram)))
    if not peak_bins:
        return distribution

    # Snap each CWT peak to the local histogram maximum and score by the
    # mass in a +-2-bin neighbourhood; drop negligible peaks.
    scored: dict[int, int] = {}
    for b in peak_bins:
        lo, hi = max(0, b - 2), min(bins, b + 3)
        local = int(lo + np.argmax(histogram[lo:hi]))
        mass = int(histogram[max(0, local - 2): local + 3].sum())
        scored[local] = max(scored.get(local, 0), mass)
    if not scored:
        return distribution
    dominant = max(scored.values())
    keep = sorted(
        (b, m)
        for b, m in scored.items()
        if m >= max(2, PEAK_MASS_THRESHOLD * dominant)
    )
    keep = _merge_adjacent(keep)
    keep = keep[:max_peaks]
    distribution.peaks = [b * bin_width + bin_width // 2 for b, _ in keep]
    distribution.peak_masses = [m for _, m in keep]
    return distribution


def _cluster_modes(histogram: np.ndarray) -> list[int]:
    """Fallback peak detector: local maxima over a smoothed histogram."""
    if histogram.sum() == 0:
        return []
    kernel = np.array([1.0, 2.0, 3.0, 2.0, 1.0])
    smooth = np.convolve(histogram.astype(float), kernel / kernel.sum(), "same")
    peaks = []
    for i in range(len(smooth)):
        left = smooth[i - 1] if i > 0 else -1.0
        right = smooth[i + 1] if i < len(smooth) - 1 else -1.0
        if smooth[i] > 0 and smooth[i] >= left and smooth[i] > right:
            peaks.append(i)
    return peaks


def _merge_adjacent(
    peaks: list[tuple[int, int]], min_gap: int = 3
) -> list[tuple[int, int]]:
    """Merge peaks closer than ``min_gap`` bins, keeping the heavier."""
    merged: list[tuple[int, int]] = []
    for b, m in peaks:
        if merged and b - merged[-1][0] < min_gap:
            if m > merged[-1][1]:
                merged[-1] = (b, m)
        else:
            merged.append((b, m))
    return merged
