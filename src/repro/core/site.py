"""The prefetch-injection-site model — Equation (2) of the paper.

Prefetching inside a short inner loop cannot run far enough ahead: every
inner-loop instance carries a prologue and an epilogue of ``distance``
iterations in which prefetching does not pay off (no prefetches cover the
first ``distance`` loads; the last ``distance`` prefetches match no demand
load).  The covered fraction is therefore roughly ``1 - distance / trip``.
Targeting coverage ``c`` requires ``trip >= distance / (1 - c)``; with
``k = 1 / (1 - c)`` (the paper's example: 80% coverage -> k = 5) the
decision is:

    inject in the outer loop  iff  trip_count < k x prefetch_distance   (Eq. 2)

i.e. the inner site is acceptable only when the loop runs at least
``k x distance`` iterations per instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class InjectionSite(str, Enum):
    INNER = "inner"
    OUTER = "outer"


#: Paper default: k = 5 targets 80% of demand loads covered.
DEFAULT_K = 5.0


def site_label(
    function: str, load_pc: int, site: "InjectionSite | str"
) -> str:
    """Canonical label for one injection site.

    The label names the *delinquent load* the site serves (function +
    profile-time PC) and the chosen site kind, so every prefetch a pass
    emits for that hint — including outer-site sweep copies — aggregates
    under one key in the observability rollups.
    """
    kind = site.value if isinstance(site, InjectionSite) else str(site)
    return f"{function}@{load_pc:#x}/{kind}"


def k_for_coverage(coverage: float) -> float:
    """Derive Eq-2's constant from a target coverage fraction."""
    if not 0.0 < coverage < 1.0:
        raise ValueError("coverage must be in (0, 1)")
    return 1.0 / (1.0 - coverage)


@dataclass(frozen=True)
class SiteDecision:
    site: InjectionSite
    trip_count: float
    distance: int
    k: float

    @property
    def threshold(self) -> float:
        """Minimum trip count for the inner site to reach the coverage goal."""
        return self.k * self.distance


def choose_injection_site(
    trip_count: float,
    inner_distance: int,
    k: float = DEFAULT_K,
    outer_available: bool = True,
) -> SiteDecision:
    """Apply Equation (2).

    ``trip_count`` is the average inner-loop trip count measured from LBR
    samples; ``inner_distance`` is the Eq-1 distance for the inner loop.
    When no outer loop exists — or its latency was unmeasurable because
    high inner trip counts push the outer branch out of the 32-entry LBR
    (§3.6, where inner injection is fine anyway) — the inner site is used
    regardless.
    """
    if trip_count <= 0:
        trip_count = 1.0
    wants_outer = trip_count < k * inner_distance
    site = (
        InjectionSite.OUTER
        if (wants_outer and outer_available)
        else InjectionSite.INNER
    )
    return SiteDecision(
        site=site, trip_count=trip_count, distance=inner_distance, k=k
    )
