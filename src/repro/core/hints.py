"""Prefetch hints: the artifact flowing from profile analysis to the
compiler pass (the paper's 'list of delinquent load PCs with their
corresponding prefetch-distance and prefetch injection site', §3.4).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Iterable, Optional

from repro.core.site import InjectionSite


@dataclass
class PrefetchHint:
    """One delinquent load's prescription."""

    load_pc: int
    function: str
    distance: int
    site: InjectionSite = InjectionSite.INNER
    #: Eq-1 distance computed on the *outer* loop's latency distribution,
    #: used when site == OUTER (§3.3).
    outer_distance: Optional[int] = None
    #: Average inner-loop trip count from LBR samples.
    trip_count: Optional[float] = None
    #: Diagnostics from the distribution analysis.
    ic_latency: int = 0
    mc_latency: int = 0
    lbr_iterations_measured: int = 0
    #: How many inner-iteration prefetches to emit for outer-site
    #: injection (sweep of %iv2, §3.5); 1 = first element only.
    sweep: int = 1

    @property
    def effective_distance(self) -> int:
        if self.site is InjectionSite.OUTER and self.outer_distance:
            return self.outer_distance
        return self.distance

    def to_dict(self) -> dict:
        raw = asdict(self)
        raw["site"] = self.site.value
        return raw

    @classmethod
    def from_dict(cls, raw: dict) -> "PrefetchHint":
        raw = dict(raw)
        raw["site"] = InjectionSite(raw["site"])
        return cls(**raw)


@dataclass
class HintSet:
    """All hints for one module, serializable to a hint file."""

    hints: list[PrefetchHint] = field(default_factory=list)

    def __iter__(self):
        return iter(self.hints)

    def __len__(self) -> int:
        return len(self.hints)

    def append(self, hint: PrefetchHint) -> None:
        self.hints.append(hint)

    def for_function(self, function: str) -> list[PrefetchHint]:
        return [hint for hint in self.hints if hint.function == function]

    def by_pc(self) -> dict[int, PrefetchHint]:
        return {hint.load_pc: hint for hint in self.hints}

    def to_json(self) -> str:
        return json.dumps(
            {"hints": [hint.to_dict() for hint in self.hints]}, indent=2
        )

    @classmethod
    def from_json(cls, text: str) -> "HintSet":
        raw = json.loads(text)
        return cls(hints=[PrefetchHint.from_dict(h) for h in raw["hints"]])

    @classmethod
    def from_hints(cls, hints: Iterable[PrefetchHint]) -> "HintSet":
        return cls(hints=list(hints))
