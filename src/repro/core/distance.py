"""The prefetch-distance model — Equation (1) of the paper.

``IC_latency x prefetch_distance = MC_latency``: a prefetch issued
``distance`` iterations ahead has ``distance x IC`` cycles to complete; it
fully hides the memory component when that product reaches ``MC``.  Hence
the optimal distance is ``ceil(MC / IC)`` computed from the peaks of the
loop's latency distribution (§3.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.distribution import LatencyDistribution

#: Distances are clamped into this range; 256 covers every loop in the
#: evaluation (the paper sweeps up to 128).
MIN_DISTANCE = 1
MAX_DISTANCE = 256

#: Below this many latency measurements the distribution is unreliable
#: and the paper's fallback (distance 1, §3.6) applies.
MIN_SAMPLES = 8


@dataclass(frozen=True)
class DistanceEstimate:
    """Outcome of the Eq-1 model for one loop."""

    distance: int
    ic_latency: int
    mc_latency: int
    samples: int
    reliable: bool

    @property
    def is_default(self) -> bool:
        return not self.reliable


def optimal_distance(distribution: LatencyDistribution) -> DistanceEstimate:
    """Apply Equation (1) to a loop-latency distribution.

    Fallbacks (paper §3.6):
    * too few measurements (inner latch appears <= once per LBR snapshot
      because the loop body holds many taken branches) -> distance 1;
    * single-peak distribution (no visible miss component) -> distance 1.
    """
    samples = distribution.count
    if samples < MIN_SAMPLES or not distribution.peaks:
        return DistanceEstimate(
            distance=MIN_DISTANCE,
            ic_latency=distribution.ic_latency,
            mc_latency=0,
            samples=samples,
            reliable=False,
        )
    ic = max(distribution.ic_latency, 1)
    mc = distribution.mc_latency
    if mc <= 0:
        return DistanceEstimate(
            distance=MIN_DISTANCE,
            ic_latency=ic,
            mc_latency=0,
            samples=samples,
            reliable=False,
        )
    distance = math.ceil(mc / ic)
    distance = max(MIN_DISTANCE, min(MAX_DISTANCE, distance))
    return DistanceEstimate(
        distance=distance,
        ic_latency=ic,
        mc_latency=mc,
        samples=samples,
        reliable=True,
    )
