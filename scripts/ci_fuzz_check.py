#!/usr/bin/env python3
"""CI guard for the generative differential-fuzzing subsystem.

Six gates, all with fixed seeds so the job is deterministic:

1. **Import sanity** — every core runtime module imports cleanly on
   its own, so a broken lazy import cannot hide behind whichever
   engine the fuzz run happens to exercise first.
2. **Clean fuzz** — ``--budget`` generated programs (plus an Eq-1/Eq-2
   analytic-model sweep) must pass the full differential oracle: four
   engines x tracing on/off x every prefetch scheme, bit-identical.
3. **Corpus replay** — every case under ``tests/corpus/`` must pass
   the same oracle (they are shrunk former failures or seeded
   construct-coverage programs).
4. **Mutation self-test** — a scratch engine copy with a seeded
   off-by-one in its cycle accounting must be *caught* by the oracle
   and *shrunk* to at most ``--max-mutant-blocks`` basic blocks,
   proving the finder and the minimizer both work.
5. **Batch axis** — every corpus case plus ``--batch-budget`` generated
   programs must be bit-identical between the batched multi-config
   runner (:func:`repro.machine.batch.run_batch`, exercised at both
   the block-dispatch ``batch`` tier and the fused-superblock
   ``batchturbo`` tier) and fresh sequential
   ``Machine`` runs of the same cells, over both a uniform cache-scale
   batch and a divergent A&J-distance batch.
6. **Code-cache axis** — every corpus case plus ``--codecache-budget``
   generated programs must be bit-identical between a fresh compile and
   a persistent-code-cache load (every cacheable engine x scheme x
   tracing mode; the warm cell must be a real cache hit), and the
   cache's validate-or-recompile guard must *detect* deliberately stale
   and booby-trapped cached modules (``check_codecache_selftest``).

``--stateful`` additionally drives the memory-hierarchy and
store/code-cache hypothesis state machines (``tests/test_mem_stateful``,
``tests/test_store_stateful``) at ``--stateful-examples`` examples each
— the nightly-depth budget, far above the bounded in-suite profiles.

Usage:
    python scripts/ci_fuzz_check.py [--budget 50] [--seed 20260805]
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from pathlib import Path

from repro.qa.corpus import default_corpus_dir, iter_cases
from repro.qa.fuzz import run_fuzz
from repro.qa.generate import GeneratorConfig, generate_spec
from repro.qa.mutants import mutant_oracle_setup
from repro.qa.oracle import (
    batch_failure,
    check_codecache_selftest,
    codecache_failure,
    oracle_failure,
)

# Every module an engine or the oracle reaches lazily.  Each must
# import standalone: a typo in one of these surfaces as a hard failure
# here instead of as a mysteriously-skipped engine in the fuzz gate.
SANITY_MODULES = (
    "repro.api",
    "repro.machine.batch",
    "repro.machine.batchturbo",
    "repro.machine.blockengine",
    "repro.machine.codecache",
    "repro.machine.fusion",
    "repro.machine.interpreter",
    "repro.machine.machine",
    "repro.machine.superblock",
    "repro.machine.translator",
    "repro.mem.batch",
    "repro.mem.fastpath",
    "repro.mem.hierarchy",
    "repro.qa.fuzz",
    "repro.qa.oracle",
    "repro.service.api",
)


def check_import_sanity() -> bool:
    failures = []
    for name in SANITY_MODULES:
        try:
            importlib.import_module(name)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            failures.append(f"{name}: {type(exc).__name__}: {exc}")
    if failures:
        for line in failures:
            print(f"FAIL: import {line}")
        return False
    print(f"OK: {len(SANITY_MODULES)} core module(s) import standalone")
    return True


def check_clean_fuzz(budget: int, seed: int, model_cases: int) -> bool:
    start = time.perf_counter()
    stats = run_fuzz(
        budget=budget, seed=seed, model_cases=model_cases, shrink=True
    )
    elapsed = time.perf_counter() - start
    if not stats.ok:
        print(f"FAIL: clean fuzz found failures\n{stats.summary()}")
        return False
    print(
        f"OK: {stats.programs} program(s) and {stats.model_cases} model "
        f"case(s) passed the differential oracle in {elapsed:.1f}s"
    )
    return True


def check_corpus_replay() -> bool:
    corpus_dir = default_corpus_dir()
    total = failures = 0
    for name, case in iter_cases(corpus_dir):
        total += 1
        failure = oracle_failure(case["spec"])
        if failure is not None:
            failures += 1
            print(f"FAIL: corpus {name}: {failure.summary()}")
    if failures:
        return False
    if not total:
        print(f"FAIL: no corpus cases under {corpus_dir}")
        return False
    print(f"OK: replayed {total} corpus case(s)")
    return True


def check_mutation_selftest(seed: int, max_blocks: int) -> bool:
    config, runners = mutant_oracle_setup()
    stats = run_fuzz(
        budget=3,
        seed=seed,
        oracle_config=config,
        runners=runners,
        shrink=True,
        model_cases=0,
        max_findings=1,
    )
    if stats.ok:
        print(
            "FAIL: the off-by-one mutant engine passed the oracle "
            "(the differential check is blind)"
        )
        return False
    finding = stats.findings[0]
    if finding.shrunk_blocks is None:
        print("FAIL: mutant failure was not shrunk")
        return False
    if finding.shrunk_blocks > max_blocks:
        print(
            f"FAIL: mutant failure shrank to {finding.shrunk_blocks} "
            f"block(s), above the {max_blocks}-block bound"
        )
        return False
    print(
        f"OK: mutant caught ({finding.failure.summary()}) and shrunk to "
        f"{finding.shrunk_blocks} block(s)"
    )
    return True


def check_batch_axis(budget: int, seed: int) -> bool:
    """Batch-vs-sequential differential: corpus + generated programs."""
    start = time.perf_counter()
    total = failures = 0
    for name, case in iter_cases(default_corpus_dir()):
        total += 1
        failure = batch_failure(case["spec"])
        if failure is not None:
            failures += 1
            print(f"FAIL: batch axis corpus {name}: {failure.summary()}")
    gen_config = GeneratorConfig()
    for i in range(budget):
        total += 1
        spec = generate_spec(seed + i, gen_config)
        failure = batch_failure(spec)
        if failure is not None:
            failures += 1
            print(f"FAIL: batch axis seed {seed + i}: {failure.summary()}")
    if failures:
        return False
    if not total:
        print("FAIL: batch axis ran zero cases")
        return False
    elapsed = time.perf_counter() - start
    print(
        f"OK: {total} case(s) bit-identical between batched (both "
        f"tiers) and sequential execution in {elapsed:.1f}s"
    )
    return True


def check_codecache_axis(budget: int, seed: int) -> bool:
    """Fresh-vs-cached-load differential plus the cache's own mutation
    self-test: corpus + generated programs."""
    start = time.perf_counter()
    total = failures = 0
    for name, case in iter_cases(default_corpus_dir()):
        total += 1
        failure = codecache_failure(case["spec"])
        if failure is not None:
            failures += 1
            print(f"FAIL: codecache axis corpus {name}: {failure.summary()}")
    gen_config = GeneratorConfig()
    for i in range(budget):
        total += 1
        spec = generate_spec(seed + i, gen_config)
        failure = codecache_failure(spec)
        if failure is not None:
            failures += 1
            print(
                f"FAIL: codecache axis seed {seed + i}: {failure.summary()}"
            )
    if failures:
        return False
    if not total:
        print("FAIL: codecache axis ran zero cases")
        return False
    try:
        detected = check_codecache_selftest(generate_spec(seed, gen_config))
    except Exception as exc:  # noqa: BLE001 - an undetected mutant
        print(f"FAIL: codecache self-test: {exc}")
        return False
    elapsed = time.perf_counter() - start
    print(
        f"OK: {total} case(s) bit-identical between fresh compile and "
        f"code-cache load; {detected} planted stale/booby-trapped "
        f"module(s) detected, in {elapsed:.1f}s"
    )
    return True


def check_stateful_machines(examples: int, seed: int) -> bool:
    """Nightly-depth run of the hypothesis state machines: the memory
    hierarchy's fast path and the store/code-cache poisoning model."""
    import os

    root = Path(__file__).resolve().parents[1]
    # The machines live in the test suite; make both the repo root (for
    # the ``tests.conftest`` helpers they build programs with) and the
    # tests directory (for the modules themselves) importable.
    for path in (str(root), str(root / "tests")):
        if path not in sys.path:
            sys.path.insert(0, path)
    os.environ.setdefault("CI", "true")  # load the derandomized profile
    from hypothesis import settings
    from hypothesis.stateful import run_state_machine_as_test

    import test_mem_stateful
    import test_store_stateful

    machines = (
        test_mem_stateful.MemModelMachine,
        test_mem_stateful.MemDifferentialMachine,
        test_store_stateful.StoreRaceMachine,
        test_store_stateful.CodeCacheMachine,
    )
    deep = settings(
        max_examples=examples,
        stateful_step_count=50,
        derandomize=True,
        deadline=None,
    )
    start = time.perf_counter()
    for machine in machines:
        try:
            run_state_machine_as_test(machine, settings=deep)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            print(f"FAIL: {machine.__name__}: {exc}")
            return False
    elapsed = time.perf_counter() - start
    print(
        f"OK: {len(machines)} state machine(s) x {examples} example(s) "
        f"x 50 steps held all invariants in {elapsed:.1f}s"
    )
    return True


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--budget", type=int, default=50)
    parser.add_argument("--seed", type=int, default=20260805)
    parser.add_argument("--model-cases", type=int, default=200)
    parser.add_argument("--max-mutant-blocks", type=int, default=3)
    parser.add_argument("--batch-budget", type=int, default=50)
    # Each codecache-axis case runs the program ~36 times (scheme x
    # engine x traced x fresh/populate/warm), so the smoke default is
    # small; nightly passes a bigger budget alongside --stateful.
    parser.add_argument("--codecache-budget", type=int, default=5)
    parser.add_argument(
        "--stateful",
        action="store_true",
        help="also run the stateful property machines at nightly depth",
    )
    parser.add_argument("--stateful-examples", type=int, default=100)
    args = parser.parse_args()

    ok = check_import_sanity()
    ok = check_clean_fuzz(args.budget, args.seed, args.model_cases) and ok
    ok = check_corpus_replay() and ok
    ok = check_mutation_selftest(args.seed, args.max_mutant_blocks) and ok
    ok = check_batch_axis(args.batch_budget, args.seed) and ok
    ok = check_codecache_axis(args.codecache_budget, args.seed) and ok
    if args.stateful:
        ok = check_stateful_machines(args.stateful_examples, args.seed) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
