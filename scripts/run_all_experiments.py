#!/usr/bin/env python3
"""Artifact-evaluation driver: regenerate every paper table and figure.

Writes, per experiment, a text rendering and a JSON payload into
``results/`` and finishes with a one-page summary.  This is the script
behind EXPERIMENTS.md.

Usage:
    python scripts/run_all_experiments.py [--scale tiny|small|full]
                                          [--only fig6,fig7] [--out results]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import warnings
from pathlib import Path

warnings.filterwarnings("ignore")

from repro.experiments import ALL_EXPERIMENTS  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "full"))
    parser.add_argument("--only", default=None,
                        help="comma-separated experiment ids")
    parser.add_argument("--out", default="results")
    args = parser.parse_args()

    selected = (
        {name.strip() for name in args.only.split(",")}
        if args.only
        else set(ALL_EXPERIMENTS)
    )
    unknown = selected - set(ALL_EXPERIMENTS)
    if unknown:
        print(f"unknown experiments: {sorted(unknown)}", file=sys.stderr)
        return 2

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    summary_lines = []
    for name in ALL_EXPERIMENTS:
        if name not in selected:
            continue
        started = time.time()
        print(f"== {name} ({args.scale}) ==", flush=True)
        result = ALL_EXPERIMENTS[name].run(args.scale)
        elapsed = time.time() - started
        text = result.to_text()
        print(text)
        print(f"[{elapsed:.1f}s]\n", flush=True)
        (out_dir / f"{name}.txt").write_text(text + "\n")
        (out_dir / f"{name}.json").write_text(
            json.dumps(
                {
                    "experiment": result.experiment,
                    "title": result.title,
                    "scale": args.scale,
                    "headers": result.headers,
                    "rows": result.rows,
                    "summary": result.summary,
                    "notes": result.notes,
                    "seconds": round(elapsed, 1),
                },
                indent=2,
            )
        )
        summary = ", ".join(f"{k}={v}" for k, v in result.summary.items())
        summary_lines.append(f"{name:8s} [{elapsed:7.1f}s] {summary}")

    print("=" * 72)
    print("\n".join(summary_lines))
    # Rebuild the summary from every result JSON present so partial
    # --only runs refresh their lines without clobbering the rest.
    lines = []
    for experiment_id in ALL_EXPERIMENTS:
        json_path = out_dir / f"{experiment_id}.json"
        if not json_path.exists():
            continue
        payload = json.loads(json_path.read_text())
        summary = ", ".join(
            f"{k}={v}" for k, v in payload.get("summary", {}).items()
        )
        lines.append(
            f"{experiment_id:8s} [{payload.get('seconds', 0):7.1f}s] {summary}"
        )
    (out_dir / "SUMMARY.txt").write_text("\n".join(lines) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
