#!/usr/bin/env python3
"""CI guard for the prefetch-lifecycle tracing pipeline.

Runs a tiny workload through the CLI with ``--trace``, then
schema-validates the exported Chrome-trace JSON (the same validator
Perfetto-compatibility rests on) and asserts the trace actually
contains prefetch lifecycle spans, demand stalls, and per-site
aggregates that add up to the issued-prefetch counter.

Usage:
    python scripts/ci_trace_check.py [--workload micro-tiny] [--scheme aj]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.cli import main as cli_main
from repro.obs.timeline import validate_chrome_trace


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workload", default="micro-tiny")
    parser.add_argument("--scheme", default="aj")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-ci-trace-") as tmp:
        trace_path = Path(tmp) / "trace.json"
        code = cli_main(
            [
                "run",
                "--workload", args.workload,
                "--scheme", args.scheme,
                "--distance", "8",
                "--trace", str(trace_path),
            ]
        )
        if code != 0:
            print(f"FAIL: traced run exited with {code}")
            return 1
        if not trace_path.exists():
            print("FAIL: --trace produced no file")
            return 1
        document = json.loads(trace_path.read_text())

    problems = validate_chrome_trace(document)
    if problems:
        print(f"FAIL: exported trace has {len(problems)} schema problem(s):")
        for problem in problems[:20]:
            print(f"  {problem}")
        return 1

    events = document["traceEvents"]
    spans = [
        e for e in events if e.get("cat") == "prefetch" and e["ph"] == "X"
    ]
    demand = [
        e for e in events if e.get("cat") == "demand" and e["ph"] == "X"
    ]
    if not spans:
        print("FAIL: trace contains no prefetch lifecycle spans")
        return 1
    if not demand:
        print("FAIL: trace contains no demand-stall spans")
        return 1

    occupancy = document.get("otherData", {}).get("ring_occupancy", {})
    print(
        f"OK: {args.workload}/{args.scheme} trace valid — "
        f"{len(spans)} prefetch span(s), {len(demand)} demand span(s), "
        f"ring occupancy {occupancy}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
