#!/usr/bin/env python3
"""CI guard for the controller/agent job-queue service.

The drill the service exists to survive:

1. execute a suite **directly** (single process) — the baseline bytes;
2. start a controller with two agent subprocesses and a short lease,
   submit a batch of jobs plus the suite over HTTP (and the suite
   twice — the duplicate must dedup onto the same job id);
3. once an agent has claimed the suite job, **SIGKILL** that agent
   mid-run;
4. assert the lapsed job is reaped and requeued (attempts grew, the
   requeue/lost counters ticked), every submitted job still reaches
   ``done``, and the suite result served over HTTP is **byte-identical**
   to the single-process baseline.

Usage:
    python scripts/ci_queue_check.py [--scale tiny] [--lease 2.0]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

import repro.api as api
from repro.serve.controller import Controller
from repro.serve.queue import ACTIVE_STATES
from repro.service.api import TuningService

WORKLOADS = ("micro-tiny", "BFS-tiny", "IS-tiny")


def http_json(base: str, path: str, payload: dict | None = None):
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(payload).encode() if payload is not None else None,
        headers={"Content-Type": "application/json"},
        method="POST" if payload is not None else "GET",
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.load(response)


def wait_for(predicate, timeout: float, interval: float = 0.02, what: str = ""):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise SystemExit(f"FAIL: timed out after {timeout:.0f}s waiting for {what}")


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", default="tiny")
    parser.add_argument("--lease", type=float, default=2.0)
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args()

    suite_request = api.SuiteRequest(scale=args.scale, workloads=WORKLOADS)
    run_requests = [
        api.RunRequest(workload=name, scale=args.scale, scheme=scheme)
        for name in WORKLOADS
        for scheme in ("baseline", "apt-get")
    ]

    # ------------------------------------------------------------------
    # 1. Single-process baseline.
    # ------------------------------------------------------------------
    print(f"[1/4] single-process baseline suite over {WORKLOADS} ...")
    baseline = api.execute(suite_request, service=TuningService())
    baseline_json = baseline.to_json()

    with tempfile.TemporaryDirectory(prefix="repro-ci-queue-") as tmp:
        controller = Controller(
            Path(tmp) / "queue",
            agents=2,
            port=0,  # any free port
            lease=args.lease,
            backoff=0.1,
        )
        controller.start()
        base = f"http://{controller.host}:{controller.port}"
        try:
            # ----------------------------------------------------------
            # 2. Submit the batch over HTTP (suite first: the long job).
            # ----------------------------------------------------------
            print(f"[2/4] submitting {1 + len(run_requests)} jobs to {base}")
            _, suite_job = http_json(
                base, "/v1/jobs", suite_request.to_payload()
            )
            status, duplicate = http_json(
                base, "/v1/jobs", suite_request.to_payload()
            )
            if not (duplicate["id"] == suite_job["id"] and duplicate["deduped"]
                    and status == 200):
                raise SystemExit(f"FAIL: duplicate did not dedup: {duplicate}")
            job_ids = [suite_job["id"]]
            for request in run_requests:
                _, submitted = http_json(
                    base, "/v1/jobs", request.to_payload()
                )
                job_ids.append(submitted["id"])

            # ----------------------------------------------------------
            # 3. SIGKILL the agent holding the suite job, mid-run.
            # ----------------------------------------------------------
            def suite_owner():
                record = controller.queue.get(suite_job["id"])
                if record.state == "done":
                    raise SystemExit(
                        "FAIL: suite finished before the kill window; "
                        "use a larger --scale"
                    )
                if record.state in ACTIVE_STATES and record.agent:
                    return record.agent
                return None

            owner = wait_for(
                suite_owner, args.timeout, what="an agent to claim the suite"
            )
            owner_pid = int(owner.rsplit("-", 1)[1])
            victims = [
                p for p in controller.agents if p.pid == owner_pid
            ]
            if not victims:
                raise SystemExit(
                    f"FAIL: suite owner {owner} is not a spawned agent"
                )
            victims[0].kill()
            victims[0].wait()
            print(f"[3/4] SIGKILLed {owner} while it held {suite_job['id']}")

            # ----------------------------------------------------------
            # 4. The fleet must absorb the loss and finish everything.
            # ----------------------------------------------------------
            def all_done():
                records = [controller.queue.get(i) for i in job_ids]
                if any(r.state in ("failed", "lost") for r in records):
                    details = [(r.id, r.state, r.error) for r in records]
                    raise SystemExit(f"FAIL: terminal failure: {details}")
                return all(r.state == "done" for r in records)

            wait_for(
                all_done, args.timeout, interval=0.1,
                what="every job to finish",
            )

            suite_record = controller.queue.get(suite_job["id"])
            if suite_record.attempts < 2:
                raise SystemExit(
                    "FAIL: suite finished with attempts="
                    f"{suite_record.attempts}; the kill did not force a "
                    "reclaim"
                )
            merged = controller.merged_metrics()
            requeues = merged.get("serve.requeued") + merged.get("serve.lost")
            if not requeues:
                raise SystemExit("FAIL: no requeue/lost recorded after kill")

            _, health = http_json(base, "/healthz")
            if health["agents"]["alive"] >= health["agents"]["spawned"]:
                raise SystemExit(f"FAIL: dead agent still 'alive': {health}")

            _, served = http_json(base, f"/v1/results/{suite_job['id']}")
            if json.dumps(served, sort_keys=True) != baseline_json:
                raise SystemExit(
                    "FAIL: served suite result is not byte-identical to the "
                    "single-process baseline"
                )
            print(
                "[4/4] suite requeued (attempts="
                f"{suite_record.attempts}) and byte-identical to baseline; "
                f"{len(job_ids)} jobs done"
            )
        finally:
            controller.stop()

    print("queue check OK: lease reclaim, retry, dedup, bit-identical result")
    return 0


if __name__ == "__main__":
    sys.exit(main())
