#!/usr/bin/env python3
"""CI guard for end-to-end service telemetry.

Drives a real controller + agent-subprocess deployment with telemetry
on and asserts the observability contract end to end:

1. submit a batch of jobs over HTTP — runs, a duplicate (the dedup hit
   must share the original's trace id), and a ``SiteReportRequest``
   (a traced simulator run that exports a prefetch-lifecycle timeline);
2. once everything is terminal, every job's span journal must be
   **balanced** (per span id, opens == closes) and end with the root
   ``job`` span closing in the job's terminal state;
3. ``GET /v1/jobs/<id>/events`` must replay a finished job's stream
   **byte-identically** across two reads, and the replay must equal the
   journal slice on disk;
4. the merged Perfetto export must pass ``validate_chrome_trace`` and
   contain *both* layers: service spans (pid 10) and the embedded
   simulator timeline (pids 1-3) for the site-report's trace;
5. ``/metrics`` must expose the span-latency histograms with
   ``# TYPE`` lines and p50/p90/p99 quantile gauges.

Usage:
    python scripts/ci_telemetry_check.py [--scale tiny]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

import repro.api as api
from repro.obs.telemetry import (
    read_records,
    span_balance_problems,
    telemetry_dir,
)
from repro.obs.timeline import validate_chrome_trace
from repro.serve.controller import Controller

WORKLOADS = ("micro-tiny", "BFS-tiny")
TRACED_WORKLOAD = "micro-tiny"


def http_json(base: str, path: str, payload: dict | None = None):
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(payload).encode() if payload is not None else None,
        headers={"Content-Type": "application/json"},
        method="POST" if payload is not None else "GET",
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.load(response)


def http_raw(base: str, path: str) -> bytes:
    with urllib.request.urlopen(f"{base}{path}") as response:
        return response.read()


def wait_for(predicate, timeout: float, interval: float = 0.05, what: str = ""):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise SystemExit(f"FAIL: timed out after {timeout:.0f}s waiting for {what}")


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", default="tiny")
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args()

    requests = [
        api.RunRequest(workload=name, scale=args.scale, scheme=scheme)
        for name in WORKLOADS
        for scheme in ("baseline", "apt-get")
    ]
    site_request = api.SiteReportRequest(
        workload=TRACED_WORKLOAD, scale=args.scale
    )

    with tempfile.TemporaryDirectory(prefix="repro-ci-telemetry-") as tmp:
        queue_dir = Path(tmp) / "queue"
        controller = Controller(queue_dir, agents=2, port=0)
        controller.start()
        base = f"http://{controller.host}:{controller.port}"
        try:
            # ----------------------------------------------------------
            # 1. Submit: runs + a duplicate + the traced site report.
            # ----------------------------------------------------------
            print(f"[1/5] submitting {len(requests) + 2} jobs to {base}")
            job_ids = []
            for request in requests:
                _, submitted = http_json(
                    base, "/v1/jobs", request.to_payload()
                )
                job_ids.append(submitted["id"])
                if not submitted["trace"]:
                    raise SystemExit(
                        f"FAIL: submission minted no trace id: {submitted}"
                    )
            status, duplicate = http_json(
                base, "/v1/jobs", requests[0].to_payload()
            )
            _, original = http_json(base, f"/v1/jobs/{job_ids[0]}")
            if not (duplicate["deduped"]
                    and duplicate["id"] == job_ids[0]
                    and duplicate["trace"] == original["trace"]):
                raise SystemExit(
                    f"FAIL: dedup hit does not share the original trace: "
                    f"{duplicate} vs {original}"
                )
            _, site_job = http_json(
                base, "/v1/jobs", site_request.to_payload()
            )
            job_ids.append(site_job["id"])

            # ----------------------------------------------------------
            # 2. Everything terminal; every journal balanced.
            # ----------------------------------------------------------
            def all_done():
                records = [controller.queue.get(i) for i in job_ids]
                if any(r.state in ("failed", "lost") for r in records):
                    details = [(r.id, r.state, r.error) for r in records]
                    raise SystemExit(f"FAIL: terminal failure: {details}")
                return all(r.state == "done" for r in records)

            wait_for(all_done, args.timeout, what="every job to finish")
            journal_dir = telemetry_dir(queue_dir)

            def journals_settled():
                for job_id in job_ids:
                    records = read_records(journal_dir, job=job_id)
                    if span_balance_problems(records):
                        return False
                return True

            # The queue journals a terminal transition's closing spans
            # just after the commit; give the writers a moment.
            wait_for(
                journals_settled, 10.0, what="journals to settle"
            )
            for job_id in job_ids:
                records = read_records(journal_dir, job=job_id)
                problems = span_balance_problems(records)
                if problems:
                    raise SystemExit(
                        f"FAIL: unbalanced spans for {job_id}: {problems}"
                    )
                closing = records[-1]
                if not (closing["ev"] == "close"
                        and closing["span"] == job_id
                        and closing["attrs"]["state"] == "done"):
                    raise SystemExit(
                        f"FAIL: {job_id} journal does not end with the "
                        f"root span closing done: {closing}"
                    )
            print(
                f"[2/5] {len(job_ids)} job(s) done, all span journals "
                "balanced"
            )

            # ----------------------------------------------------------
            # 3. Byte-identical replay over /events.
            # ----------------------------------------------------------
            for job_id in (job_ids[0], site_job["id"]):
                first = http_raw(base, f"/v1/jobs/{job_id}/events")
                second = http_raw(base, f"/v1/jobs/{job_id}/events")
                if first != second:
                    raise SystemExit(
                        f"FAIL: /events replay for {job_id} is not "
                        "byte-identical"
                    )
                streamed = [
                    json.loads(line)
                    for line in first.decode().splitlines()
                ]
                if streamed != read_records(journal_dir, job=job_id):
                    raise SystemExit(
                        f"FAIL: /events for {job_id} differs from the "
                        "journal on disk"
                    )
            print("[3/5] /events replays are byte-identical")

            # ----------------------------------------------------------
            # 4. Merged Perfetto document: both layers, valid schema.
            # ----------------------------------------------------------
            out_path = Path(tmp) / "timeline.json"
            controller.export_timeline(out_path)
            document = json.loads(out_path.read_text())
            problems = validate_chrome_trace(document)
            if problems:
                raise SystemExit(
                    f"FAIL: merged timeline invalid: {problems}"
                )
            pids = {event["pid"] for event in document["traceEvents"]}
            if 10 not in pids:
                raise SystemExit(
                    f"FAIL: no service spans in the merged timeline: {pids}"
                )
            if not pids & {1, 2, 3}:
                raise SystemExit(
                    "FAIL: the site report's simulator timeline was not "
                    f"embedded: pids {pids}"
                )
            if site_job["trace"] not in document["otherData"]["sim_traces"]:
                raise SystemExit(
                    f"FAIL: sim trace not keyed to {site_job['trace']}: "
                    f"{document['otherData']}"
                )
            print(
                f"[4/5] merged timeline valid: "
                f"{len(document['traceEvents'])} event(s), pids {sorted(pids)}"
            )

            # ----------------------------------------------------------
            # 5. Metrics exposition: typed families + quantile gauges.
            # ----------------------------------------------------------
            # Span histograms live in the agents' registries and reach
            # the controller's merged /metrics via per-pid snapshots the
            # agent rewrites *after* the terminal commit — retry briefly.
            needed = (
                "# TYPE repro_serve_span_job_seconds histogram",
                "repro_serve_span_job_seconds_p50 ",
                "repro_serve_span_job_seconds_p99 ",
            )
            wait_for(
                lambda: all(
                    line in http_raw(base, "/metrics").decode()
                    for line in needed
                ),
                10.0,
                what=f"span histograms in /metrics ({needed})",
            )
            print("[5/5] /metrics exposes span histograms with quantiles")
        finally:
            controller.stop()

    print(
        "telemetry check OK: balanced spans, shared dedup trace, "
        "byte-identical replay, merged Perfetto timeline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
