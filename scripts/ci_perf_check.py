#!/usr/bin/env python3
"""CI perf-smoke for the fast and turbo execution engines.

Runs the Figure-5-style suite comparison (every registered workload at
the given scale, baseline/A&J/APT-GET — the same work ``benchmarks/
bench_fig05.py`` measures) once per engine through the v1 ``repro.api``
surface, then asserts:

* **bit-identical results** — every workload's per-scheme payload
  (values, counters, injection reports, hints) matches the reference
  interpreter exactly, for the fast *and* turbo engines, and
* **the engine ladder holds** — wall-clock for the fast engine must
  beat the reference interpreter (``--min-speedup``), and the turbo
  tier must not lose to the fast engine it supersedes
  (``--min-turbo-speedup``, default 1.0: a turbo regression below fast
  means the superblock tier has stopped paying for itself).

With ``--max-telemetry-overhead`` it additionally runs the
service-telemetry overhead probe (``benchmarks/bench_obs.py
measure_telemetry``): executing a tiny suite inside a telemetry job
scope must cost at most the given fraction over the bare execution
(default gate in CI: 0.05 = 5%), and the results must stay
byte-identical — telemetry observes, never perturbs.

With ``--min-batch-speedup`` it additionally runs the batched-sweep
probe (``benchmarks/bench_sweep.py measure_sweep``): an 8-cell A&J
distance sweep executed in one :func:`repro.machine.batch.run_batch`
pass must beat the per-cell sequential reference replay by at least
the given ratio (CI gate: 3.0x) and must not lose to running the
compiled fast engine once per cell; every batched cell is checked
bit-identical against its sequential twin inside the probe.

With ``--min-batchturbo-speedup`` it additionally gates the batched
*superblock* tier against the block-dispatch batch tier on the same
8-cell distance ladder (and reports the 32-cell distance x cache-scale
grid alongside): ``tier="batchturbo"`` must beat ``tier="batch"`` by
at least the given wall-clock ratio, with per-cell bit-identity
between the tiers asserted inside the probe.  The CI floor (1.25x) is
calibrated from measured ratios — ~1.5x on the miss-bound BFS-tiny
ladder, up to ~2x on fold-heavy workloads — minus headroom for runner
noise; docs/PERFORMANCE.md records the measurements and the Amdahl
ceiling that bounds them.

With ``--min-codecache-speedup`` it additionally runs the persistent
code-cache probe (``benchmarks/bench_codecache.py
measure_codecache``): loading the turbo engine's compiled form from a
warm cache must beat a cold superblock build by at least the given
ratio (CI gate: 3.0x) over a multi-workload compile ladder; the probe
asserts internally that the warm run is a real cache hit and that
cached-load results are bit-identical with fresh compiles.

Usage:
    python scripts/ci_perf_check.py [--scale tiny] [--min-speedup 1.2]
        [--max-telemetry-overhead 0.05] [--min-batch-speedup 3.0]
        [--min-codecache-speedup 3.0]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import repro.api as api
from repro.service.api import TuningService


def timed_suite(engine: str, scale: str) -> tuple[api.SuiteResult, float]:
    # A fresh, uncached in-memory service per engine: every run is a
    # cold compute, so the wall-clock comparison is engine vs engine.
    service = TuningService()
    start = time.perf_counter()
    result = api.compare_suite(scale, engine=engine, service=service)
    return result, time.perf_counter() - start


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", default="tiny")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.2,
        help="required fast-vs-reference wall-clock ratio (default 1.2)",
    )
    parser.add_argument(
        "--min-turbo-speedup",
        type=float,
        default=1.0,
        help="required turbo-vs-fast wall-clock ratio (default 1.0)",
    )
    parser.add_argument(
        "--max-telemetry-overhead",
        type=float,
        default=None,
        help="also gate service-telemetry overhead: max allowed "
        "traced/plain wall-clock excess as a fraction (e.g. 0.05); "
        "omitted, the probe is skipped",
    )
    parser.add_argument(
        "--telemetry-repeats",
        type=int,
        default=3,
        help="suite repeats for the telemetry probe (median; default 3)",
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=None,
        help="also gate the batched sweep tier: required batched-vs-"
        "sequential-reference wall-clock ratio on an 8-cell distance "
        "sweep (e.g. 3.0); omitted, the probe is skipped",
    )
    parser.add_argument(
        "--min-batchturbo-speedup",
        type=float,
        default=None,
        help="also gate the batched superblock tier: required "
        "batchturbo-vs-batch wall-clock ratio on the 8-cell distance "
        "ladder (e.g. 1.25); omitted, the probe is skipped",
    )
    parser.add_argument(
        "--min-codecache-speedup",
        type=float,
        default=None,
        help="also gate the persistent AOT code cache: required warm-"
        "load-vs-cold-turbo-build wall-clock ratio over the compile "
        "ladder (e.g. 3.0); omitted, the probe is skipped",
    )
    args = parser.parse_args()

    turbo, turbo_seconds = timed_suite("turbo", args.scale)
    fast, fast_seconds = timed_suite("fast", args.scale)
    reference, reference_seconds = timed_suite("reference", args.scale)

    if fast.workloads != reference.workloads or turbo.workloads != fast.workloads:
        print(
            f"FAIL: workload sets differ: turbo={turbo.workloads} "
            f"fast={fast.workloads} reference={reference.workloads}",
            file=sys.stderr,
        )
        return 1

    for engine, suite in (("fast", fast), ("turbo", turbo)):
        mismatches = [
            name
            for name in suite.workloads
            if suite.rows[name] != reference.rows[name]
        ]
        if mismatches:
            print(
                f"FAIL: {engine} engine is not bit-identical with the "
                f"reference interpreter on: {', '.join(mismatches)}",
                file=sys.stderr,
            )
            return 1

    errors = [
        name
        for name in fast.workloads
        if fast.rows[name].get("error") is not None
    ]
    if errors:
        print(f"FAIL: suite errors on: {', '.join(errors)}", file=sys.stderr)
        return 1

    speedup = reference_seconds / max(fast_seconds, 1e-9)
    turbo_speedup = fast_seconds / max(turbo_seconds, 1e-9)
    print(
        f"suite@{args.scale}: {len(fast.workloads)} workload(s), "
        f"turbo={turbo_seconds:.2f}s fast={fast_seconds:.2f}s "
        f"reference={reference_seconds:.2f}s "
        f"fast/reference={speedup:.2f}x (floor {args.min_speedup:.2f}x) "
        f"turbo/fast={turbo_speedup:.2f}x "
        f"(floor {args.min_turbo_speedup:.2f}x)"
    )
    if speedup < args.min_speedup:
        print(
            f"FAIL: fast engine speedup {speedup:.2f}x is below the "
            f"{args.min_speedup:.2f}x floor",
            file=sys.stderr,
        )
        return 1
    if turbo_speedup < args.min_turbo_speedup:
        print(
            f"FAIL: turbo-vs-fast speedup {turbo_speedup:.2f}x is below "
            f"the {args.min_turbo_speedup:.2f}x floor",
            file=sys.stderr,
        )
        return 1

    if args.max_telemetry_overhead is not None:
        sys.path.insert(
            0, str(Path(__file__).resolve().parents[1] / "benchmarks")
        )
        from bench_obs import measure_telemetry

        probe = measure_telemetry(repeats=args.telemetry_repeats)
        print(
            f"telemetry probe: plain={probe['plain_s']:.2f}s "
            f"traced={probe['traced_s']:.2f}s "
            f"overhead={probe['telemetry_overhead'] * 100:.1f}% "
            f"(ceiling {args.max_telemetry_overhead * 100:.1f}%), "
            f"{probe['span_records']} span record(s)"
        )
        if not probe["results_identical"]:
            print(
                "FAIL: suite results differ with telemetry on vs off",
                file=sys.stderr,
            )
            return 1
        if probe["telemetry_overhead"] > args.max_telemetry_overhead:
            print(
                f"FAIL: telemetry overhead "
                f"{probe['telemetry_overhead'] * 100:.1f}% exceeds the "
                f"{args.max_telemetry_overhead * 100:.1f}% ceiling",
                file=sys.stderr,
            )
            return 1

    sweep = None
    if args.min_batch_speedup is not None or (
        args.min_batchturbo_speedup is not None
    ):
        sys.path.insert(
            0, str(Path(__file__).resolve().parents[1] / "benchmarks")
        )
        from bench_sweep import measure_sweep

        sweep = measure_sweep()

    if args.min_batch_speedup is not None:
        print(
            f"batch probe: {sweep['workload']}@{sweep['scale']} "
            f"{sweep['cells']}-cell distance sweep "
            f"batched={sweep['batched_s']:.2f}s "
            f"vs reference={sweep['speedup']['reference']:.2f}x "
            f"(floor {args.min_batch_speedup:.2f}x) "
            f"vs fast={sweep['speedup']['fast']:.2f}x (floor 1.00x)"
        )
        if sweep["speedup"]["reference"] < args.min_batch_speedup:
            print(
                f"FAIL: batched sweep speedup "
                f"{sweep['speedup']['reference']:.2f}x is below the "
                f"{args.min_batch_speedup:.2f}x floor",
                file=sys.stderr,
            )
            return 1
        if sweep["speedup"]["fast"] < 1.0:
            print(
                f"FAIL: batched sweep loses to per-cell fast runs "
                f"({sweep['speedup']['fast']:.2f}x < 1.00x)",
                file=sys.stderr,
            )
            return 1

    if args.min_batchturbo_speedup is not None:
        from bench_sweep import measure_grid

        ratio = sweep["batchturbo_vs_batch"]
        grid = measure_grid()
        print(
            f"batchturbo probe: {sweep['workload']}@{sweep['scale']} "
            f"{sweep['cells']}-cell ladder "
            f"batch={sweep['tiers']['batch']:.2f}s "
            f"batchturbo={sweep['tiers']['batchturbo']:.2f}s "
            f"-> {ratio:.2f}x (floor {args.min_batchturbo_speedup:.2f}x); "
            f"{grid['cells']}-cell grid "
            f"{grid['batchturbo_vs_batch']:.2f}x"
        )
        if ratio < args.min_batchturbo_speedup:
            print(
                f"FAIL: batchturbo-vs-batch speedup {ratio:.2f}x is "
                f"below the {args.min_batchturbo_speedup:.2f}x floor",
                file=sys.stderr,
            )
            return 1
        if grid["batchturbo_vs_batch"] < 1.0:
            print(
                f"FAIL: batchturbo loses to the batch tier on the "
                f"distance x cache-scale grid "
                f"({grid['batchturbo_vs_batch']:.2f}x < 1.00x)",
                file=sys.stderr,
            )
            return 1

    if args.min_codecache_speedup is not None:
        sys.path.insert(
            0, str(Path(__file__).resolve().parents[1] / "benchmarks")
        )
        from bench_codecache import measure_codecache

        probe = measure_codecache()
        print(
            f"codecache probe: {len(probe['workloads'])}-workload "
            f"ladder@{probe['scale']} "
            f"turbo cold={probe['cold_s']['turbo'] * 1000:.1f}ms "
            f"warm={probe['warm_s']['turbo'] * 1000:.1f}ms "
            f"-> {probe['speedup']['turbo']:.2f}x "
            f"(floor {args.min_codecache_speedup:.2f}x); "
            f"translate {probe['speedup']['translate']:.2f}x"
        )
        if probe["speedup"]["turbo"] < args.min_codecache_speedup:
            print(
                f"FAIL: warm code-cache load speedup "
                f"{probe['speedup']['turbo']:.2f}x is below the "
                f"{args.min_codecache_speedup:.2f}x floor",
                file=sys.stderr,
            )
            return 1

    print(
        "OK: counters bit-identical, engine ladder holds "
        "(turbo >= fast > reference)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
