#!/usr/bin/env python3
"""CI perf-smoke for the fast execution engine.

Runs the Figure-5-style suite comparison (every registered workload at
the given scale, baseline/A&J/APT-GET — the same work ``benchmarks/
bench_fig05.py`` measures) once per engine through the v1 ``repro.api``
surface, then asserts:

* **bit-identical results** — every workload's per-scheme payload
  (values, counters, injection reports, hints) matches the reference
  interpreter exactly, and
* **the fast engine is actually faster** — wall-clock for the fast
  engine must beat the reference interpreter (``--min-speedup`` guards
  against regressions that keep correctness but lose the point).

Usage:
    python scripts/ci_perf_check.py [--scale tiny] [--min-speedup 1.2]
"""

from __future__ import annotations

import argparse
import sys
import time

import repro.api as api
from repro.service.api import TuningService


def timed_suite(engine: str, scale: str) -> tuple[api.SuiteResult, float]:
    # A fresh, uncached in-memory service per engine: every run is a
    # cold compute, so the wall-clock comparison is engine vs engine.
    service = TuningService()
    start = time.perf_counter()
    result = api.compare_suite(scale, engine=engine, service=service)
    return result, time.perf_counter() - start


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", default="tiny")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.2,
        help="required fast-vs-reference wall-clock ratio (default 1.2)",
    )
    args = parser.parse_args()

    fast, fast_seconds = timed_suite("fast", args.scale)
    reference, reference_seconds = timed_suite("reference", args.scale)

    if fast.workloads != reference.workloads:
        print(
            f"FAIL: workload sets differ: {fast.workloads} "
            f"vs {reference.workloads}",
            file=sys.stderr,
        )
        return 1

    mismatches = []
    for name in fast.workloads:
        if fast.rows[name] != reference.rows[name]:
            mismatches.append(name)
    if mismatches:
        print(
            f"FAIL: fast engine is not bit-identical with the reference "
            f"interpreter on: {', '.join(mismatches)}",
            file=sys.stderr,
        )
        return 1

    errors = [
        name
        for name in fast.workloads
        if fast.rows[name].get("error") is not None
    ]
    if errors:
        print(f"FAIL: suite errors on: {', '.join(errors)}", file=sys.stderr)
        return 1

    speedup = reference_seconds / max(fast_seconds, 1e-9)
    print(
        f"suite@{args.scale}: {len(fast.workloads)} workload(s), "
        f"fast={fast_seconds:.2f}s reference={reference_seconds:.2f}s "
        f"speedup={speedup:.2f}x (floor {args.min_speedup:.2f}x)"
    )
    if speedup < args.min_speedup:
        print(
            f"FAIL: fast engine speedup {speedup:.2f}x is below the "
            f"{args.min_speedup:.2f}x floor",
            file=sys.stderr,
        )
        return 1

    print("OK: counters bit-identical, fast engine faster than reference")
    return 0


if __name__ == "__main__":
    sys.exit(main())
