#!/usr/bin/env python3
"""CI guard for the tuning-service artifact cache.

Runs one experiment twice against a temporary cache directory and
asserts that (a) the second run is served from the cache (persisted
``cache.hits`` grew, zero misses on the warm pass) and (b) the two
reproduced tables are byte-identical.  Exercises the store, the job
pool and the metrics layer end-to-end on every push.

Usage:
    python scripts/ci_cache_check.py [--experiment fig6] [--scale tiny]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.cli import main as cli_main
from repro.service.store import ArtifactStore


def run_experiment(name: str, scale: str, cache_dir: str, out: Path) -> None:
    code = cli_main(
        [
            "experiment", name,
            "--scale", scale,
            "--jobs", "2",
            "--cache-dir", cache_dir,
            "--output", str(out),
        ]
    )
    if code != 0:
        raise SystemExit(f"experiment {name} exited with {code}")


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--experiment", default="fig6")
    parser.add_argument("--scale", default="tiny")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-ci-cache-") as tmp:
        cache_dir = str(Path(tmp) / "cache")
        cold_out = Path(tmp) / "cold.json"
        warm_out = Path(tmp) / "warm.json"

        run_experiment(args.experiment, args.scale, cache_dir, cold_out)
        store = ArtifactStore(cache_dir)
        cold_metrics = store.read_metrics()
        cold_hits = cold_metrics.get("cache.hits", 0)
        if store.stats()["entries"] == 0:
            print("FAIL: cold run stored no artifacts", file=sys.stderr)
            return 1

        run_experiment(args.experiment, args.scale, cache_dir, warm_out)
        warm_metrics = store.read_metrics()
        warm_hits = warm_metrics.get("cache.hits", 0)

        if warm_hits <= cold_hits:
            print(
                f"FAIL: warm run added no cache hits "
                f"(cold={cold_hits}, warm={warm_hits})",
                file=sys.stderr,
            )
            return 1
        if warm_metrics.get("cache.misses", 0) != cold_metrics.get(
            "cache.misses", 0
        ):
            print("FAIL: warm run recorded cache misses", file=sys.stderr)
            return 1
        if json.loads(cold_out.read_text()) != json.loads(warm_out.read_text()):
            print("FAIL: warm table differs from cold table", file=sys.stderr)
            return 1

        print(
            f"OK: {args.experiment}@{args.scale} warm run served from cache "
            f"({warm_hits - cold_hits} hit(s)), tables identical"
        )
        cli_main(["cache", "stats", "--cache-dir", cache_dir])
    return 0


if __name__ == "__main__":
    sys.exit(main())
